package hql

// Stmt is a parsed HQL statement. Every statement kind must declare its
// read-only classification to satisfy the interface: adding a statement
// without deciding whether it mutates is a compile error, not a silent
// "routes to replicas" default. See readonly.go for what counts as
// read-only.
type Stmt interface {
	stmt()
	// readOnly reports that executing the statement leaves the database,
	// the session's transaction buffer, and the session's rule set
	// untouched.
	readOnly() bool
	// shardInfo classifies how a shard coordinator routes the statement
	// (see shard.go for the contract).
	shardInfo() ShardInfo
}

// CreateHierarchyStmt — CREATE HIERARCHY <domain>.
type CreateHierarchyStmt struct{ Domain string }

// ClassStmt — CLASS <name> UNDER <parent> [, <parent>…]. The hierarchy is
// inferred from the first parent's domain unless Domain is set via
// "CLASS <name> IN <domain>" (root-level class).
type ClassStmt struct {
	Name    string
	Parents []string
	Domain  string // set when UNDER is omitted: CLASS x IN Animal
}

// InstanceStmt — INSTANCE <name> UNDER <parent> [, …] / IN <domain>.
type InstanceStmt struct {
	Name    string
	Parents []string
	Domain  string
}

// EdgeStmt — EDGE <domain>: <parent> -> <child>.
type EdgeStmt struct {
	Domain string
	Parent string
	Child  string
}

// PreferStmt — PREFER <stronger> OVER <weaker> IN <domain>.
type PreferStmt struct {
	Domain   string
	Stronger string
	Weaker   string
}

// CreateRelationStmt — CREATE RELATION <name> (<attr>: <domain>, …).
type CreateRelationStmt struct {
	Name  string
	Attrs [][2]string // (attr, domain)
}

// DropRelationStmt — DROP RELATION <name>.
type DropRelationStmt struct{ Name string }

// AssertStmt — ASSERT <rel> (<v>, …) / DENY <rel> (<v>, …).
type AssertStmt struct {
	Relation string
	Values   []string
	Sign     bool
}

// RetractStmt — RETRACT <rel> (<v>, …).
type RetractStmt struct {
	Relation string
	Values   []string
}

// HoldsStmt — HOLDS <rel> (<v>, …).
type HoldsStmt struct {
	Relation string
	Values   []string
}

// WhyStmt — WHY <rel> (<v>, …): evaluation plus justification (Fig. 9).
type WhyStmt struct {
	Relation string
	Values   []string
}

// SelectStmt — SELECT FROM <rel> [WHERE <attr> UNDER <class> [AND …]]
// [AS <name>]. "attr = v" is shorthand for "attr UNDER v".
type SelectStmt struct {
	Relation string
	Conds    [][2]string // (attr, class)
	As       string
}

// ExtensionStmt — EXTENSION <rel>: print the flat extension.
type ExtensionStmt struct{ Relation string }

// ConsolidateStmt — CONSOLIDATE <rel>.
type ConsolidateStmt struct{ Relation string }

// ExplicateStmt — EXPLICATE <rel> [ON (<attr>, …)].
type ExplicateStmt struct {
	Relation string
	Attrs    []string
}

// BinOpStmt — UNION/INTERSECT/DIFFERENCE/JOIN <a> <b> AS <c>.
type BinOpStmt struct {
	Op    string // "union" | "intersect" | "difference" | "join"
	Left  string
	Right string
	As    string
}

// ProjectStmt — PROJECT <rel> ON (<attr>, …) AS <name>.
type ProjectStmt struct {
	Relation string
	Attrs    []string
	As       string
}

// ShowStmt — SHOW HIERARCHIES | SHOW RELATIONS | SHOW HIERARCHY <d> |
// SHOW RELATION <r>.
type ShowStmt struct {
	What   string // "hierarchies" | "relations" | "hierarchy" | "relation" | "views" | "view"
	Target string
}

// SetPolicyStmt — SET POLICY allow|warn|forbid.
type SetPolicyStmt struct{ Policy string }

// SetModeStmt — SET MODE <rel> off_path|on_path|none (paper appendix).
type SetModeStmt struct {
	Relation string
	Mode     string
}

// DropNodeStmt — DROP NODE <name> IN <domain>: remove a childless,
// unreferenced hierarchy node.
type DropNodeStmt struct {
	Domain string
	Name   string
}

// AtomSpec is a predicate applied to arguments; an argument starting with
// '?' is a Datalog variable.
type AtomSpec struct {
	Pred string
	Args []string
	// Negated marks a "NOT pred(args)" body literal (negation as failure;
	// the rule set must be stratified).
	Negated bool
}

// RuleStmt — RULE <head(args)> [IF <atom> [AND <atom>]…]: adds a Datalog
// rule (or a ground fact when the body is empty) to the session's program.
type RuleStmt struct {
	Head AtomSpec
	Body []AtomSpec
}

// InferStmt — INFER <atom>: runs the session's Datalog program over the
// database's relations (as EDB) and taxonomies (as isa/2) and prints the
// derivations.
type InferStmt struct{ Goal AtomSpec }

// CountStmt — COUNT <rel> [BY (<attr>, …)]: extension counts (§3.3.2's
// statistical use of explication).
type CountStmt struct {
	Relation string
	By       []string
}

// DumpStmt — DUMP: print an HQL script reproducing the database.
type DumpStmt struct{}

// ExplainStmt — EXPLAIN <select-or-binop>: render the access plan the
// cost-based planner would choose for the wrapped statement, without
// executing it. Only SELECT and the binary operators (UNION, INTERSECT,
// DIFFERENCE, JOIN) are explainable; the parser enforces this.
type ExplainStmt struct{ Inner Stmt }

// BeginStmt / CommitStmt / RollbackStmt — transaction control.
// CreateViewStmt — CREATE MATERIALIZED VIEW <name> AS <query>. Query is
// the canonical rendering (Render) of the defining statement, which must
// be a materializable read (SELECT without AS, EXTENSION, or COUNT).
type CreateViewStmt struct {
	Name  string
	Query string
}

// DropViewStmt — DROP VIEW <name>.
type DropViewStmt struct{ Name string }

type BeginStmt struct{}

// CommitStmt ends a transaction, applying it atomically.
type CommitStmt struct{}

// RollbackStmt discards the current transaction.
type RollbackStmt struct{}

func (CreateHierarchyStmt) stmt() {}
func (ClassStmt) stmt()           {}
func (InstanceStmt) stmt()        {}
func (EdgeStmt) stmt()            {}
func (PreferStmt) stmt()          {}
func (CreateRelationStmt) stmt()  {}
func (DropRelationStmt) stmt()    {}
func (AssertStmt) stmt()          {}
func (RetractStmt) stmt()         {}
func (HoldsStmt) stmt()           {}
func (WhyStmt) stmt()             {}
func (SelectStmt) stmt()          {}
func (ExtensionStmt) stmt()       {}
func (ConsolidateStmt) stmt()     {}
func (ExplicateStmt) stmt()       {}
func (BinOpStmt) stmt()           {}
func (ProjectStmt) stmt()         {}
func (ShowStmt) stmt()            {}
func (SetPolicyStmt) stmt()       {}
func (SetModeStmt) stmt()         {}
func (DropNodeStmt) stmt()        {}
func (RuleStmt) stmt()            {}
func (InferStmt) stmt()           {}
func (CountStmt) stmt()           {}
func (DumpStmt) stmt()            {}
func (ExplainStmt) stmt()         {}
func (CreateViewStmt) stmt()      {}
func (DropViewStmt) stmt()        {}
func (BeginStmt) stmt()           {}
func (CommitStmt) stmt()          {}
func (RollbackStmt) stmt()        {}

// Read-only classification, one explicit decision per statement kind (the
// Stmt interface requires it; see readonly.go for the contract).
func (CreateHierarchyStmt) readOnly() bool { return false }
func (ClassStmt) readOnly() bool           { return false }
func (InstanceStmt) readOnly() bool        { return false }
func (EdgeStmt) readOnly() bool            { return false }
func (PreferStmt) readOnly() bool          { return false }
func (CreateRelationStmt) readOnly() bool  { return false }
func (DropRelationStmt) readOnly() bool    { return false }
func (AssertStmt) readOnly() bool          { return false }
func (RetractStmt) readOnly() bool         { return false }
func (HoldsStmt) readOnly() bool           { return true }
func (WhyStmt) readOnly() bool             { return true }

// SELECT is read-only only without an AS clause: AS attaches the result to
// the database as a new relation.
func (s SelectStmt) readOnly() bool { return s.As == "" }

func (ExtensionStmt) readOnly() bool   { return true }
func (ConsolidateStmt) readOnly() bool { return false }
func (ExplicateStmt) readOnly() bool   { return false }

// BinOpStmt and ProjectStmt always carry an AS clause — they exist to
// create the derived relation.
func (BinOpStmt) readOnly() bool   { return false }
func (ProjectStmt) readOnly() bool { return false }

func (ShowStmt) readOnly() bool      { return true }
func (SetPolicyStmt) readOnly() bool { return false }
func (SetModeStmt) readOnly() bool   { return false }
func (DropNodeStmt) readOnly() bool  { return false }

// RULE mutates the session's Datalog program; INFER only runs it.
func (RuleStmt) readOnly() bool  { return false }
func (InferStmt) readOnly() bool { return true }

func (CountStmt) readOnly() bool { return true }
func (DumpStmt) readOnly() bool  { return true }

// EXPLAIN only plans — it never runs the wrapped statement, so even an
// EXPLAIN over a SELECT … AS or a binary operator attaches nothing.
func (ExplainStmt) readOnly() bool { return true }

// View DDL mutates the view catalog; the defining query inside CREATE
// MATERIALIZED VIEW is read-only but the registration is not.
func (CreateViewStmt) readOnly() bool { return false }
func (DropViewStmt) readOnly() bool   { return false }

// Transaction control mutates session transaction state.
func (BeginStmt) readOnly() bool    { return false }
func (CommitStmt) readOnly() bool   { return false }
func (RollbackStmt) readOnly() bool { return false }

// Shard routing, one explicit decision per statement kind (the Stmt
// interface requires it; see shard.go for what each route means).
//
// Catalog mutations replicate to every shard.
func (s CreateHierarchyStmt) shardInfo() ShardInfo { return ShardInfo{Route: RouteBroadcast} }
func (s ClassStmt) shardInfo() ShardInfo           { return ShardInfo{Route: RouteBroadcast} }
func (s InstanceStmt) shardInfo() ShardInfo        { return ShardInfo{Route: RouteBroadcast} }
func (s EdgeStmt) shardInfo() ShardInfo            { return ShardInfo{Route: RouteBroadcast} }
func (s PreferStmt) shardInfo() ShardInfo          { return ShardInfo{Route: RouteBroadcast} }
func (s CreateRelationStmt) shardInfo() ShardInfo  { return ShardInfo{Route: RouteBroadcast} }
func (s DropRelationStmt) shardInfo() ShardInfo    { return ShardInfo{Route: RouteBroadcast} }
func (s SetPolicyStmt) shardInfo() ShardInfo       { return ShardInfo{Route: RouteBroadcast} }
func (s DropNodeStmt) shardInfo() ShardInfo        { return ShardInfo{Route: RouteBroadcast} }

// SET MODE and CONSOLIDATE mutate one relation's stored form identically
// on every shard (consolidation only removes tuples implied by others, and
// every implier of a shard-local tuple lives on the same shard).
func (s SetModeStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteBroadcast, Relation: s.Relation}
}
func (s ConsolidateStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteBroadcast, Relation: s.Relation}
}

// EXPLICATE is classified broadcast for the degenerate single-shard
// cluster; a multi-shard coordinator rejects it outright (it would
// materialize instance-level tuples on every shard, breaking the placement
// invariant that all-instance tuples live on exactly one home shard).
func (s ExplicateStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteBroadcast, Relation: s.Relation}
}

// Single-tuple statements carry their shard key.
func (s AssertStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteKeyed, Relation: s.Relation, Values: s.Values}
}
func (s RetractStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteKeyed, Relation: s.Relation, Values: s.Values}
}
func (s HoldsStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteKeyed, Relation: s.Relation, Values: s.Values}
}
func (s WhyStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteKeyed, Relation: s.Relation, Values: s.Values}
}

// Per-tuple reads over one relation scatter and merge.
func (s SelectStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteScatter, Relations: []string{s.Relation}}
}
func (s ExtensionStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteScatter, Relations: []string{s.Relation}}
}
func (s CountStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteScatter, Relations: []string{s.Relation}}
}

// Multi-relation algebra runs at the coordinator over gathered snapshots;
// its result is a coordinator-local derived relation.
func (s BinOpStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteCoordinator, Relations: []string{s.Left, s.Right}}
}
func (s ProjectStmt) shardInfo() ShardInfo {
	return ShardInfo{Route: RouteCoordinator, Relations: []string{s.Relation}}
}

// Session state, whole-database views, and transaction control are the
// coordinator's own.
// Materialized views live at the coordinator: they tail the local
// committed WAL, which a sharded deployment does not have in one place.
func (s CreateViewStmt) shardInfo() ShardInfo { return ShardInfo{Route: RouteCoordinator} }
func (s DropViewStmt) shardInfo() ShardInfo   { return ShardInfo{Route: RouteCoordinator} }

func (s ShowStmt) shardInfo() ShardInfo     { return ShardInfo{Route: RouteCoordinator} }
func (s RuleStmt) shardInfo() ShardInfo     { return ShardInfo{Route: RouteCoordinator} }
func (s InferStmt) shardInfo() ShardInfo    { return ShardInfo{Route: RouteCoordinator} }
func (s DumpStmt) shardInfo() ShardInfo     { return ShardInfo{Route: RouteCoordinator} }
func (s ExplainStmt) shardInfo() ShardInfo  { return ShardInfo{Route: RouteCoordinator} }
func (s BeginStmt) shardInfo() ShardInfo    { return ShardInfo{Route: RouteCoordinator} }
func (s CommitStmt) shardInfo() ShardInfo   { return ShardInfo{Route: RouteCoordinator} }
func (s RollbackStmt) shardInfo() ShardInfo { return ShardInfo{Route: RouteCoordinator} }
