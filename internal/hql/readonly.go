package hql

// ReadOnlyStmt reports whether a statement leaves the database, the
// session's transaction buffer, and the session's rule set untouched.
// Read-only statements are safe to execute any number of times, which is
// what lets a network client auto-retry them after an ambiguous failure
// (connection severed before the reply arrived).
//
// The classification itself lives on each statement type (ast.go): the
// Stmt interface requires a readOnly() method, so a newly added statement
// kind that hasn't been classified fails to compile rather than silently
// defaulting to "mutating" (or worse, a router silently sending a write to
// a read replica). SELECT is read-only only without an AS clause: AS
// attaches the result as a new relation. RULE mutates the session's
// program; BEGIN/COMMIT/ROLLBACK mutate transaction state; SET POLICY
// mutates the database.
func ReadOnlyStmt(st Stmt) bool { return st.readOnly() }

// ReadOnly reports whether every statement in the list is read-only.
func ReadOnly(stmts []Stmt) bool {
	for _, st := range stmts {
		if !ReadOnlyStmt(st) {
			return false
		}
	}
	return len(stmts) > 0
}

// ReadOnlyScript parses input and reports whether the whole script is
// read-only. Unparseable input is conservatively classified as mutating.
func ReadOnlyScript(input string) bool {
	stmts, err := Parse(input)
	if err != nil {
		return false
	}
	return ReadOnly(stmts)
}
