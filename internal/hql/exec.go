package hql

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/deductive"
	"hrdb/internal/hierarchy"
	"hrdb/internal/obs"
)

// ErrNoTx is returned by COMMIT/ROLLBACK outside a transaction.
var ErrNoTx = errors.New("hql: no transaction in progress")

// ErrInTx is returned by BEGIN inside a transaction.
var ErrInTx = errors.New("hql: transaction already in progress")

// TxOp is one buffered transactional update (an alias of catalog.TxOp so
// storage back ends can implement Target without importing this package).
type TxOp = catalog.TxOp

// Target abstracts the mutable database a session executes against: either
// an in-memory catalog (MemTarget) or a durable storage.Store, which
// satisfies this interface directly.
type Target interface {
	Database() *catalog.Database
	CreateHierarchy(domain string) error
	AddClass(domain, name string, parents ...string) error
	AddInstance(domain, name string, parents ...string) error
	AddEdge(domain, parent, child string) error
	Prefer(domain, stronger, weaker string) error
	CreateRelation(name string, attrs ...catalog.AttrSpec) error
	DropRelation(name string) error
	Assert(rel string, values ...string) error
	Deny(rel string, values ...string) error
	Retract(rel string, values ...string) error
	Consolidate(rel string) error
	Explicate(rel string, attrs ...string) error
	DropNode(domain, name string) error
	SetMode(rel string, mode core.Preemption) error
	ApplyTx(ops []TxOp) error
}

// MemTarget adapts a bare catalog.Database to the Target interface.
type MemTarget struct{ DB *catalog.Database }

// Database returns the wrapped database.
func (m MemTarget) Database() *catalog.Database { return m.DB }

// CreateHierarchy implements Target.
func (m MemTarget) CreateHierarchy(domain string) error {
	_, err := m.DB.CreateHierarchy(domain)
	return err
}

func (m MemTarget) hier(domain string) (*hierarchy.Hierarchy, error) {
	return m.DB.Hierarchy(domain)
}

// AddClass implements Target.
func (m MemTarget) AddClass(domain, name string, parents ...string) error {
	h, err := m.hier(domain)
	if err != nil {
		return err
	}
	return h.AddClass(name, parents...)
}

// AddInstance implements Target.
func (m MemTarget) AddInstance(domain, name string, parents ...string) error {
	h, err := m.hier(domain)
	if err != nil {
		return err
	}
	return h.AddInstance(name, parents...)
}

// AddEdge implements Target.
func (m MemTarget) AddEdge(domain, parent, child string) error {
	h, err := m.hier(domain)
	if err != nil {
		return err
	}
	return h.AddEdge(parent, child)
}

// Prefer implements Target.
func (m MemTarget) Prefer(domain, stronger, weaker string) error {
	h, err := m.hier(domain)
	if err != nil {
		return err
	}
	return h.Prefer(stronger, weaker)
}

// CreateRelation implements Target.
func (m MemTarget) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	_, err := m.DB.CreateRelation(name, attrs...)
	return err
}

// DropRelation implements Target.
func (m MemTarget) DropRelation(name string) error { return m.DB.DropRelation(name) }

// Assert implements Target.
func (m MemTarget) Assert(rel string, values ...string) error { return m.DB.Assert(rel, values...) }

// Deny implements Target.
func (m MemTarget) Deny(rel string, values ...string) error { return m.DB.Deny(rel, values...) }

// Retract implements Target.
func (m MemTarget) Retract(rel string, values ...string) error {
	_, err := m.DB.Retract(rel, values...)
	return err
}

// Consolidate implements Target.
func (m MemTarget) Consolidate(rel string) error {
	_, err := m.DB.Consolidate(rel)
	return err
}

// Explicate implements Target.
func (m MemTarget) Explicate(rel string, attrs ...string) error {
	return m.DB.Explicate(rel, attrs...)
}

// DropNode implements Target.
func (m MemTarget) DropNode(domain, name string) error { return m.DB.DropNode(domain, name) }

// SetMode implements Target.
func (m MemTarget) SetMode(rel string, mode core.Preemption) error {
	return m.DB.SetMode(rel, mode)
}

// ApplyTx implements Target via a catalog transaction.
func (m MemTarget) ApplyTx(ops []TxOp) error { return m.DB.ApplyOps(ops) }

// ErrSessionBusy reports concurrent use of a Session: a second ExecContext
// entered while another statement was still executing. Sessions hold
// transaction state, so interleaved execution would corrupt it; the guard
// makes the misuse fail loudly instead.
var ErrSessionBusy = errors.New("hql: session is single-goroutine; concurrent ExecContext rejected")

// Session executes HQL statements against a target, holding transaction
// state and the session's Datalog rules.
//
// A Session is strictly single-goroutine: it buffers transaction operations
// between BEGIN and COMMIT, so two interleaved statements could commit a
// mix of both transactions. Concurrent callers must create one Session
// each (the underlying Target — catalog or store — is itself
// synchronized). A cheap CAS guard enforces this: an ExecContext entered
// while another is in flight returns ErrSessionBusy without touching any
// state.
//
// Ownership model for servers: one Session per logical stream. The v1 line
// protocol runs one stream per connection, so the connection handler owns
// the session; the v2 multiplexed protocol runs many streams per
// connection, each owning a private session, with per-stream FIFO
// dispatch guaranteeing the single-goroutine contract. A session whose
// stream is abandoned mid-statement must be retired (the statement may
// still be running); a session whose stream ended cleanly may be reused
// after Reset.
type Session struct {
	target Target
	txOps  []TxOp
	inTx   bool
	rules  []deductive.Rule
	// busy guards against concurrent ExecContext (see ErrSessionBusy).
	busy atomic.Bool
	// slow and tracer are the session's observability hooks (see obs.go);
	// both nil by default, in which case execution pays nothing for them.
	slow   *obs.SlowQueryLog
	tracer obs.Tracer
}

// NewSession creates a session over the target.
func NewSession(target Target) *Session { return &Session{target: target} }

// InTx reports whether a transaction is open.
func (s *Session) InTx() bool { return s.inTx }

// Reset returns the session to its base state: any open transaction is
// discarded (its buffered operations are dropped, never applied) and the
// session's Datalog rules are cleared. It lets a connection pool — the v2
// server multiplexer runs one session per logical stream — reuse a session
// for a new stream without leaking the previous stream's state. Reset on a
// session whose statement is still executing returns ErrSessionBusy and
// changes nothing.
func (s *Session) Reset() error {
	if !s.busy.CompareAndSwap(false, true) {
		return ErrSessionBusy
	}
	defer s.busy.Store(false)
	s.inTx = false
	s.txOps = nil
	s.rules = nil
	return nil
}

// Exec parses and executes statements, returning the combined output text.
func (s *Session) Exec(input string) (string, error) {
	return s.ExecContext(context.Background(), input)
}

// ExecContext is Exec with cancellation: long-running query statements
// (SELECT, EXTENSION, set operations, JOIN, PROJECT) observe ctx and abort
// with its error. Cancellation is checked between statements too, so a
// multi-statement script stops at the first uncompleted statement.
func (s *Session) ExecContext(ctx context.Context, input string) (string, error) {
	if !s.busy.CompareAndSwap(false, true) {
		return "", ErrSessionBusy
	}
	defer s.busy.Store(false)
	if s.slow != nil || s.tracer != nil {
		return s.observed(ctx, input)
	}
	return s.run(ctx, input, nil)
}

// run parses and executes a script. When stages is non-nil every phase's
// wall-clock time is appended to it — "parse" first, then one
// "exec:<kind>" entry per statement — for the slow-query log and tracer.
func (s *Session) run(ctx context.Context, input string, stages *[]obs.Stage) (string, error) {
	var t0 time.Time
	if stages != nil {
		t0 = time.Now()
	}
	stmts, err := Parse(input)
	if stages != nil {
		*stages = append(*stages, obs.Stage{Name: "parse", Duration: time.Since(t0)})
	}
	if err != nil {
		return "", err
	}
	var out strings.Builder
	for _, st := range stmts {
		if err := ctx.Err(); err != nil {
			return out.String(), err
		}
		metricStatements.Inc()
		if stages != nil {
			t0 = time.Now()
		}
		res, err := s.exec(ctx, st)
		if stages != nil {
			d := time.Since(t0)
			*stages = append(*stages, obs.Stage{Name: "exec:" + stmtName(st), Duration: d})
			if s.tracer != nil {
				s.tracer.Span(obs.Span{Name: "hql." + stmtName(st), Start: t0, Duration: d, Err: err})
			}
		}
		if err != nil {
			return out.String(), err
		}
		if res != "" {
			out.WriteString(res)
			if !strings.HasSuffix(res, "\n") {
				out.WriteString("\n")
			}
		}
	}
	return out.String(), nil
}

// exec runs one statement.
func (s *Session) exec(ctx context.Context, st Stmt) (string, error) {
	db := s.target.Database()
	switch st := st.(type) {
	case CreateHierarchyStmt:
		if err := s.target.CreateHierarchy(st.Domain); err != nil {
			return "", err
		}
		return fmt.Sprintf("created hierarchy %s", st.Domain), nil

	case ClassStmt:
		domain, err := s.resolveDomain(st.Domain, st.Parents)
		if err != nil {
			return "", err
		}
		if err := s.target.AddClass(domain, st.Name, st.Parents...); err != nil {
			return "", err
		}
		return fmt.Sprintf("class %s added to %s", st.Name, domain), nil

	case InstanceStmt:
		domain, err := s.resolveDomain(st.Domain, st.Parents)
		if err != nil {
			return "", err
		}
		if err := s.target.AddInstance(domain, st.Name, st.Parents...); err != nil {
			return "", err
		}
		return fmt.Sprintf("instance %s added to %s", st.Name, domain), nil

	case EdgeStmt:
		if err := s.target.AddEdge(st.Domain, st.Parent, st.Child); err != nil {
			return "", err
		}
		return fmt.Sprintf("edge %s -> %s added in %s", st.Parent, st.Child, st.Domain), nil

	case PreferStmt:
		if err := s.target.Prefer(st.Domain, st.Stronger, st.Weaker); err != nil {
			return "", err
		}
		return fmt.Sprintf("preference %s over %s in %s", st.Stronger, st.Weaker, st.Domain), nil

	case CreateRelationStmt:
		attrs := make([]catalog.AttrSpec, len(st.Attrs))
		for i, a := range st.Attrs {
			attrs[i] = catalog.AttrSpec{Name: a[0], Domain: a[1]}
		}
		if err := s.target.CreateRelation(st.Name, attrs...); err != nil {
			return "", err
		}
		return fmt.Sprintf("created relation %s", st.Name), nil

	case DropRelationStmt:
		if err := s.target.DropRelation(st.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("dropped relation %s", st.Name), nil

	case AssertStmt:
		kind := "assert"
		if !st.Sign {
			kind = "deny"
		}
		if s.inTx {
			s.txOps = append(s.txOps, TxOp{Kind: kind, Relation: st.Relation, Values: st.Values})
			return fmt.Sprintf("staged %s on %s", kind, st.Relation), nil
		}
		var err error
		if st.Sign {
			err = s.target.Assert(st.Relation, st.Values...)
		} else {
			err = s.target.Deny(st.Relation, st.Values...)
		}
		if err != nil {
			return "", err
		}
		past := "asserted"
		if !st.Sign {
			past = "denied"
		}
		return s.renderWarnings(fmt.Sprintf("%s %s(%s)", past, st.Relation, strings.Join(st.Values, ", "))), nil

	case RetractStmt:
		if s.inTx {
			s.txOps = append(s.txOps, TxOp{Kind: "retract", Relation: st.Relation, Values: st.Values})
			return fmt.Sprintf("staged retract on %s", st.Relation), nil
		}
		if err := s.target.Retract(st.Relation, st.Values...); err != nil {
			return "", err
		}
		return fmt.Sprintf("retracted %s(%s)", st.Relation, strings.Join(st.Values, ", ")), nil

	case HoldsStmt:
		v, err := s.evaluateOrView(st.Relation, st.Values)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%v", v.Value), nil

	case WhyStmt:
		v, err := s.evaluateOrView(st.Relation, st.Values)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s(%s) = %v\n", st.Relation, strings.Join(st.Values, ", "), v.Value)
		if v.Default {
			b.WriteString("  by default (no applicable tuple; universal negated tuple)\n")
			return b.String(), nil
		}
		b.WriteString("  strongest binding:\n")
		for _, t := range v.Binders {
			fmt.Fprintf(&b, "    %s\n", t)
		}
		b.WriteString("  applicable tuples:\n")
		for _, t := range v.Applicable {
			fmt.Fprintf(&b, "    %s\n", t)
		}
		return b.String(), nil

	case SelectStmt:
		r, err := s.snapshotOrView(st.Relation)
		if err != nil {
			return "", err
		}
		conds := make([]algebra.Condition, len(st.Conds))
		for i, c := range st.Conds {
			conds[i] = algebra.Condition{Attr: c[0], Class: c[1]}
		}
		name := st.As
		if name == "" {
			name = "σ(" + st.Relation + ")"
		}
		res, err := algebra.SelectContext(ctx, name, r, conds...)
		if err != nil {
			return "", err
		}
		res = res.Consolidate()
		if st.As != "" {
			if err := db.AttachRelation(res); err != nil {
				return "", err
			}
		}
		return res.Table(), nil

	case ExplainStmt:
		switch inner := st.Inner.(type) {
		case SelectStmt:
			r, err := db.Snapshot(inner.Relation)
			if err != nil {
				return "", err
			}
			conds := make([]algebra.Condition, len(inner.Conds))
			for i, c := range inner.Conds {
				conds[i] = algebra.Condition{Attr: c[0], Class: c[1]}
			}
			plan, err := algebra.PlanSelect(r, conds...)
			if err != nil {
				return "", err
			}
			return plan.String(), nil
		case BinOpStmt:
			left, err := db.Snapshot(inner.Left)
			if err != nil {
				return "", err
			}
			right, err := db.Snapshot(inner.Right)
			if err != nil {
				return "", err
			}
			plan, err := algebra.PlanBinOp(inner.Op, left, right)
			if err != nil {
				return "", err
			}
			return plan.String(), nil
		}
		return "", fmt.Errorf("hql: EXPLAIN: unsupported statement %T", st.Inner)

	case ExtensionStmt:
		r, err := s.snapshotOrView(st.Relation)
		if err != nil {
			return "", err
		}
		ext, err := r.ExtensionContext(ctx)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d atomic items\n", st.Relation, len(ext))
		for _, it := range ext {
			fmt.Fprintf(&b, "  %s\n", it)
		}
		return b.String(), nil

	case ConsolidateStmt:
		if err := s.target.Consolidate(st.Relation); err != nil {
			return "", err
		}
		r, err := db.Snapshot(st.Relation)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("consolidated %s (%d tuples remain)", st.Relation, r.Len()), nil

	case ExplicateStmt:
		if err := s.target.Explicate(st.Relation, st.Attrs...); err != nil {
			return "", err
		}
		r, err := db.Snapshot(st.Relation)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("explicated %s (%d tuples)", st.Relation, r.Len()), nil

	case BinOpStmt:
		left, err := s.snapshotOrView(st.Left)
		if err != nil {
			return "", err
		}
		right, err := s.snapshotOrView(st.Right)
		if err != nil {
			return "", err
		}
		var res *core.Relation
		switch st.Op {
		case "union":
			res, err = algebra.UnionContext(ctx, st.As, left, right)
		case "intersect":
			res, err = algebra.IntersectContext(ctx, st.As, left, right)
		case "difference":
			res, err = algebra.DifferenceContext(ctx, st.As, left, right)
		case "join":
			res, err = algebra.JoinContext(ctx, st.As, left, right)
		}
		if err != nil {
			return "", err
		}
		if err := db.AttachRelation(res); err != nil {
			return "", err
		}
		return res.Table(), nil

	case ProjectStmt:
		r, err := s.snapshotOrView(st.Relation)
		if err != nil {
			return "", err
		}
		res, err := algebra.ProjectContext(ctx, st.As, r, st.Attrs...)
		if err != nil {
			return "", err
		}
		if err := db.AttachRelation(res); err != nil {
			return "", err
		}
		return res.Table(), nil

	case RuleStmt:
		rule, err := toRule(st)
		if err != nil {
			return "", err
		}
		// Validate against a throwaway program so bad rules are rejected
		// up front.
		probe := deductive.NewProgram()
		if err := probe.AddRule(rule); err != nil {
			return "", err
		}
		s.rules = append(s.rules, rule)
		return "rule added: " + rule.String(), nil

	case InferStmt:
		return s.infer(st)

	case CountStmt:
		r, err := s.snapshotOrView(st.Relation)
		if err != nil {
			return "", err
		}
		counts, err := algebra.Count(r, st.By...)
		if err != nil {
			return "", err
		}
		return algebra.FormatCounts(st.Relation, st.By, counts), nil

	case DumpStmt:
		return Dump(db)

	case ShowStmt:
		return s.show(st)

	case SetPolicyStmt:
		switch st.Policy {
		case "allow":
			db.SetPolicy(catalog.AllowExceptions)
		case "warn":
			db.SetPolicy(catalog.WarnExceptions)
		case "forbid":
			db.SetPolicy(catalog.ForbidExceptions)
		default:
			return "", fmt.Errorf("hql: unknown policy %q (want allow|warn|forbid)", st.Policy)
		}
		return fmt.Sprintf("policy = %s", st.Policy), nil

	case SetModeStmt:
		var mode core.Preemption
		switch st.Mode {
		case "off_path", "offpath":
			mode = core.OffPath
		case "on_path", "onpath":
			mode = core.OnPath
		case "none", "no_preemption":
			mode = core.NoPreemption
		default:
			return "", fmt.Errorf("hql: unknown mode %q (want off_path|on_path|none)", st.Mode)
		}
		if err := s.target.SetMode(st.Relation, mode); err != nil {
			return "", err
		}
		return fmt.Sprintf("mode of %s = %s", st.Relation, mode), nil

	case DropNodeStmt:
		if err := s.target.DropNode(st.Domain, st.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("dropped node %s from %s", st.Name, st.Domain), nil

	case CreateViewStmt:
		vc, err := s.viewCatalog()
		if err != nil {
			return "", err
		}
		if err := vc.CreateView(st.Name, st.Query); err != nil {
			return "", err
		}
		return fmt.Sprintf("created materialized view %s", st.Name), nil

	case DropViewStmt:
		vc, err := s.viewCatalog()
		if err != nil {
			return "", err
		}
		if err := vc.DropView(st.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("dropped view %s", st.Name), nil

	case BeginStmt:
		if s.inTx {
			return "", ErrInTx
		}
		s.inTx = true
		s.txOps = nil
		return "transaction started", nil

	case CommitStmt:
		if !s.inTx {
			return "", ErrNoTx
		}
		ops := s.txOps
		s.inTx = false
		s.txOps = nil
		if err := s.target.ApplyTx(ops); err != nil {
			return "", err
		}
		return s.renderWarnings(fmt.Sprintf("committed %d operations", len(ops))), nil

	case RollbackStmt:
		if !s.inTx {
			return "", ErrNoTx
		}
		n := len(s.txOps)
		s.inTx = false
		s.txOps = nil
		return fmt.Sprintf("rolled back %d operations", n), nil

	default:
		return "", fmt.Errorf("hql: unhandled statement %T", st)
	}
}

// renderWarnings appends any pending exception warnings to a result line.
func (s *Session) renderWarnings(base string) string {
	w := s.target.Database().Warnings()
	if len(w) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	for _, msg := range w {
		b.WriteString("\nwarning: ")
		b.WriteString(msg)
	}
	return b.String()
}

// resolveDomain determines the hierarchy for CLASS/INSTANCE: the explicit
// IN domain, or the unique hierarchy containing every named parent.
func (s *Session) resolveDomain(explicit string, parents []string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	db := s.target.Database()
	var candidates []string
	for _, d := range db.Hierarchies() {
		h, err := db.Hierarchy(d)
		if err != nil {
			continue
		}
		all := true
		for _, p := range parents {
			if !h.Has(p) {
				all = false
				break
			}
		}
		if all {
			candidates = append(candidates, d)
		}
	}
	switch len(candidates) {
	case 1:
		return candidates[0], nil
	case 0:
		return "", fmt.Errorf("hql: no hierarchy contains parents %v", parents)
	default:
		return "", fmt.Errorf("hql: parents %v are ambiguous across hierarchies %v; use IN <domain>",
			parents, candidates)
	}
}

// toTerm converts an HQL argument to a Datalog term ('?'-prefixed =
// variable).
func toTerm(arg string) deductive.Term {
	if strings.HasPrefix(arg, "?") {
		return deductive.V(arg[1:])
	}
	return deductive.C(arg)
}

// toAtom converts an AtomSpec.
func toAtom(a AtomSpec) deductive.Atom {
	terms := make([]deductive.Term, len(a.Args))
	for i, arg := range a.Args {
		terms[i] = toTerm(arg)
	}
	if a.Negated {
		return deductive.Not(a.Pred, terms...)
	}
	return deductive.A(a.Pred, terms...)
}

// toRule converts a RuleStmt.
func toRule(st RuleStmt) (deductive.Rule, error) {
	r := deductive.Rule{Head: toAtom(st.Head)}
	for _, b := range st.Body {
		r.Body = append(r.Body, toAtom(b))
	}
	return r, nil
}

// infer builds a Datalog program from the session's rules plus the
// database's relations (EDB) and hierarchies (isa/2), then solves the goal.
func (s *Session) infer(st InferStmt) (string, error) {
	db := s.target.Database()
	p := deductive.NewProgram()
	for _, name := range db.Relations() {
		r, err := db.Snapshot(name)
		if err != nil {
			return "", err
		}
		p.AddEDB(name, r)
	}
	for _, d := range db.Hierarchies() {
		h, err := db.Hierarchy(d)
		if err != nil {
			return "", err
		}
		p.AddTaxonomy(h)
	}
	for _, r := range s.rules {
		if err := p.AddRule(r); err != nil {
			return "", err
		}
	}
	goal := toAtom(st.Goal)
	results, err := p.Solve(goal)
	if err != nil {
		return "", err
	}
	// Ground goal: boolean answer.
	ground := true
	for _, t := range goal.Args {
		if t.Var {
			ground = false
			break
		}
	}
	if ground {
		return fmt.Sprintf("%v", len(results) > 0), nil
	}
	if len(results) == 0 {
		return "no derivations", nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d derivations:\n", len(results))
	for _, res := range results {
		var parts []string
		for _, t := range goal.Args {
			if t.Var {
				parts = append(parts, fmt.Sprintf("?%s=%s", t.Name, res[t.Name]))
			}
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, ", "))
	}
	return b.String(), nil
}

// show renders SHOW statements.
func (s *Session) show(st ShowStmt) (string, error) {
	db := s.target.Database()
	switch st.What {
	case "hierarchies":
		return strings.Join(db.Hierarchies(), "\n"), nil
	case "relations":
		return strings.Join(db.Relations(), "\n"), nil
	case "rules":
		if len(s.rules) == 0 {
			return "no rules", nil
		}
		var lines []string
		for _, r := range s.rules {
			lines = append(lines, r.String())
		}
		return strings.Join(lines, "\n"), nil
	case "relation":
		r, err := s.snapshotOrView(st.Target)
		if err != nil {
			return "", err
		}
		return r.Table(), nil
	case "views":
		vc, err := s.viewCatalog()
		if err != nil {
			return "", err
		}
		names := vc.ViewNames()
		if len(names) == 0 {
			return "no views", nil
		}
		return strings.Join(names, "\n"), nil
	case "view":
		vc, err := s.viewCatalog()
		if err != nil {
			return "", err
		}
		return vc.ViewStatus(st.Target)
	case "hierarchy":
		h, err := db.Hierarchy(st.Target)
		if err != nil {
			return "", err
		}
		return renderHierarchy(h), nil
	default:
		return "", fmt.Errorf("hql: unknown SHOW %q", st.What)
	}
}

// renderHierarchy prints an indented tree (DAG nodes with several parents
// appear once per parent, marked with *).
func renderHierarchy(h *hierarchy.Hierarchy) string {
	var b strings.Builder
	seen := map[string]bool{}
	var rec func(node string, depth int)
	rec = func(node string, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(node)
		if h.IsInstance(node) {
			b.WriteString(" ·")
		}
		if seen[node] {
			b.WriteString(" *\n")
			return
		}
		seen[node] = true
		b.WriteString("\n")
		children := h.Children(node)
		sort.Strings(children)
		for _, c := range children {
			rec(c, depth+1)
		}
	}
	rec(h.Domain(), 0)
	return b.String()
}
