package hql

import (
	"reflect"
	"strings"
	"testing"
)

// Every statement kind, written once the way a client might type it
// (mixed case, equality sugar, odd spacing). Render must round-trip each
// through Parse to an identical AST.
var renderCases = []string{
	"CREATE HIERARCHY Animal;",
	"CLASS mammal UNDER animal IN Animal;",
	"CLASS 'pet rock' UNDER mineral, toy IN Thing;",
	"class bird in Animal;",
	"INSTANCE fido UNDER dog IN Animal;",
	"INSTANCE opus IN Animal;",
	"EDGE Animal: mammal -> dog;",
	"PREFER dog OVER mammal IN Animal;",
	"CREATE RELATION likes (who: Person, what: Food);",
	"DROP RELATION likes;",
	"ASSERT likes (john, pizza);",
	"DENY likes (john, 'hot dog');",
	"RETRACT likes (john, pizza);",
	"HOLDS likes (john, pizza);",
	"WHY likes (john, pizza);",
	"SELECT FROM likes;",
	"SELECT FROM likes WHERE who UNDER student AND what = pizza AS picky;",
	"EXTENSION likes;",
	"CONSOLIDATE likes;",
	"EXPLICATE likes;",
	"EXPLICATE likes ON (who, what);",
	"UNION a b AS c;",
	"intersect a b as c;",
	"DIFFERENCE a b AS c;",
	"JOIN a b AS c;",
	"PROJECT likes ON (who) AS who_likes;",
	"SHOW HIERARCHIES;",
	"SHOW RELATIONS;",
	"SHOW RULES;",
	"SHOW HIERARCHY Animal;",
	"SHOW RELATION likes;",
	"SHOW VIEWS;",
	"SHOW VIEW flat;",
	"create materialized view flat as extension likes;",
	"CREATE MATERIALIZED VIEW picky AS SELECT FROM likes WHERE who UNDER student;",
	"CREATE MATERIALIZED VIEW tally AS COUNT likes BY (who);",
	"DROP VIEW flat;",
	"SET POLICY warn;",
	"SET MODE likes off_path;",
	"DROP NODE dog IN Animal;",
	"RULE ancestor(?x, ?y) IF parent(?x, ?y);",
	"RULE ancestor(?x, ?z) IF parent(?x, ?y) AND ancestor(?y, ?z);",
	"RULE lonely(?x) IF person(?x) AND NOT likes(?x, ?y);",
	"RULE fact(john);",
	"INFER ancestor(?x, john);",
	"COUNT likes;",
	"COUNT likes BY (who);",
	"DUMP;",
	"EXPLAIN SELECT FROM likes WHERE who UNDER student;",
	"EXPLAIN JOIN a b AS c;",
	"BEGIN;",
	"COMMIT;",
	"ROLLBACK;",
}

func TestRenderRoundTrip(t *testing.T) {
	for _, src := range renderCases {
		stmts, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if len(stmts) != 1 {
			t.Fatalf("parse %q: got %d statements", src, len(stmts))
		}
		rendered := Render(stmts[0]) + ";"
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (rendered from %q): %v", rendered, src, err)
		}
		if len(back) != 1 || !reflect.DeepEqual(stmts[0], back[0]) {
			t.Errorf("round-trip mismatch:\n  source:   %q\n  rendered: %q\n  got AST:  %#v\n  want AST: %#v",
				src, rendered, back[0], stmts[0])
		}
	}
}

func TestRenderScript(t *testing.T) {
	stmts, err := Parse("BEGIN; ASSERT r (a, b); COMMIT;")
	if err != nil {
		t.Fatal(err)
	}
	got := RenderScript(stmts)
	want := "BEGIN;\nASSERT r (a, b);\nCOMMIT;\n"
	if got != want {
		t.Errorf("RenderScript = %q, want %q", got, want)
	}
	if _, err := Parse(got); err != nil {
		t.Errorf("rendered script does not re-parse: %v", err)
	}
}

func TestRenderQuotesAwkwardNames(t *testing.T) {
	stmts, err := Parse("ASSERT 'my rel' ('a value', plain);")
	if err != nil {
		t.Fatal(err)
	}
	r := Render(stmts[0])
	if !strings.Contains(r, "'my rel'") || !strings.Contains(r, "'a value'") {
		t.Errorf("Render did not quote names needing it: %q", r)
	}
}

func TestShardClassifier(t *testing.T) {
	cases := []struct {
		src  string
		want ShardInfo
	}{
		{"CREATE HIERARCHY Animal;", ShardInfo{Route: RouteBroadcast}},
		{"CLASS mammal UNDER animal IN Animal;", ShardInfo{Route: RouteBroadcast}},
		{"INSTANCE fido UNDER dog IN Animal;", ShardInfo{Route: RouteBroadcast}},
		{"EDGE Animal: mammal -> dog;", ShardInfo{Route: RouteBroadcast}},
		{"PREFER dog OVER mammal IN Animal;", ShardInfo{Route: RouteBroadcast}},
		{"CREATE RELATION r (a: D);", ShardInfo{Route: RouteBroadcast}},
		{"DROP RELATION r;", ShardInfo{Route: RouteBroadcast}},
		{"SET POLICY warn;", ShardInfo{Route: RouteBroadcast}},
		{"SET MODE r off_path;", ShardInfo{Route: RouteBroadcast, Relation: "r"}},
		{"CONSOLIDATE r;", ShardInfo{Route: RouteBroadcast, Relation: "r"}},
		{"EXPLICATE r;", ShardInfo{Route: RouteBroadcast, Relation: "r"}},
		{"DROP NODE dog IN Animal;", ShardInfo{Route: RouteBroadcast}},

		{"ASSERT r (a, b);", ShardInfo{Route: RouteKeyed, Relation: "r", Values: []string{"a", "b"}}},
		{"DENY r (a, b);", ShardInfo{Route: RouteKeyed, Relation: "r", Values: []string{"a", "b"}}},
		{"RETRACT r (a, b);", ShardInfo{Route: RouteKeyed, Relation: "r", Values: []string{"a", "b"}}},
		{"HOLDS r (a, b);", ShardInfo{Route: RouteKeyed, Relation: "r", Values: []string{"a", "b"}}},
		{"WHY r (a, b);", ShardInfo{Route: RouteKeyed, Relation: "r", Values: []string{"a", "b"}}},

		{"SELECT FROM r WHERE a UNDER c;", ShardInfo{Route: RouteScatter, Relations: []string{"r"}}},
		{"EXTENSION r;", ShardInfo{Route: RouteScatter, Relations: []string{"r"}}},
		{"COUNT r BY (a);", ShardInfo{Route: RouteScatter, Relations: []string{"r"}}},

		{"JOIN a b AS c;", ShardInfo{Route: RouteCoordinator, Relations: []string{"a", "b"}}},
		{"PROJECT r ON (a) AS p;", ShardInfo{Route: RouteCoordinator, Relations: []string{"r"}}},
		{"SHOW RELATIONS;", ShardInfo{Route: RouteCoordinator}},
		{"RULE f(?x) IF g(?x);", ShardInfo{Route: RouteCoordinator}},
		{"INFER f(?x);", ShardInfo{Route: RouteCoordinator}},
		{"DUMP;", ShardInfo{Route: RouteCoordinator}},
		{"EXPLAIN SELECT FROM r;", ShardInfo{Route: RouteCoordinator}},
		{"BEGIN;", ShardInfo{Route: RouteCoordinator}},
		{"COMMIT;", ShardInfo{Route: RouteCoordinator}},
		{"ROLLBACK;", ShardInfo{Route: RouteCoordinator}},
	}
	for _, c := range cases {
		stmts, err := Parse(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got := ShardOf(stmts[0])
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShardOf(%q) = %+v, want %+v", c.src, got, c.want)
		}
	}
}

func TestShardRoutingString(t *testing.T) {
	for r, want := range map[ShardRouting]string{
		RouteBroadcast:   "broadcast",
		RouteKeyed:       "keyed",
		RouteScatter:     "scatter",
		RouteCoordinator: "coordinator",
		ShardRouting(99): "unknown",
	} {
		if got := r.String(); got != want {
			t.Errorf("ShardRouting(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}
