package hql

import (
	"fmt"
	"strings"
	"testing"
)

// TestReadOnlyStmtAllKinds pins the classification of every statement kind
// at the AST level. The Stmt interface forces each kind to implement
// readOnly() — a new statement cannot compile unclassified — and this table
// forces the classification itself to be reviewed: adding a kind means
// adding a row here (the count check fails otherwise), and the replication
// router trusts exactly this predicate to decide what may run on a replica.
func TestReadOnlyStmtAllKinds(t *testing.T) {
	cases := []struct {
		st   Stmt
		want bool
	}{
		// Pure reads.
		{HoldsStmt{Relation: "R"}, true},
		{WhyStmt{Relation: "R"}, true},
		{ExtensionStmt{Relation: "R"}, true},
		{CountStmt{Relation: "R"}, true},
		{DumpStmt{}, true},
		{ShowStmt{What: "relations"}, true},
		{InferStmt{Goal: AtomSpec{Pred: "p"}}, true},
		{SelectStmt{Relation: "R"}, true},

		// SELECT ... AS materializes a relation.
		{SelectStmt{Relation: "R", As: "R2"}, false},

		// Schema and hierarchy DDL.
		{CreateHierarchyStmt{Domain: "D"}, false},
		{ClassStmt{Name: "C", Domain: "D"}, false},
		{InstanceStmt{Name: "I", Domain: "D"}, false},
		{EdgeStmt{Domain: "D", Parent: "P", Child: "C"}, false},
		{PreferStmt{Domain: "D", Stronger: "A", Weaker: "B"}, false},
		{CreateRelationStmt{Name: "R"}, false},
		{DropRelationStmt{Name: "R"}, false},
		{DropNodeStmt{Domain: "D", Name: "N"}, false},

		// DML and derived-relation builders.
		{AssertStmt{Relation: "R", Sign: true}, false},
		{AssertStmt{Relation: "R", Sign: false}, false},
		{RetractStmt{Relation: "R"}, false},
		{ConsolidateStmt{Relation: "R"}, false},
		{ExplicateStmt{Relation: "R"}, false},
		{BinOpStmt{Op: "union", Left: "A", Right: "B", As: "C"}, false},
		{ProjectStmt{Relation: "R", As: "P"}, false},

		// Materialized-view DDL mutates the view catalog; the defining
		// query inside CREATE ... VIEW is read-only, the registration not.
		{CreateViewStmt{Name: "V", Query: "EXTENSION R"}, false},
		{DropViewStmt{Name: "V"}, false},

		// Session and database mode state.
		{RuleStmt{Head: AtomSpec{Pred: "p"}}, false},
		{SetPolicyStmt{Policy: "warn"}, false},
		{SetModeStmt{Relation: "R", Mode: "on_path"}, false},
		{BeginStmt{}, false},
		{CommitStmt{}, false},
		{RollbackStmt{}, false},
	}

	kinds := map[string]bool{}
	for _, c := range cases {
		if got := ReadOnlyStmt(c.st); got != c.want {
			t.Errorf("ReadOnlyStmt(%#v) = %v, want %v", c.st, got, c.want)
		}
		kinds[fmt.Sprintf("%T", c.st)] = true
	}
	// One row (at least) per statement kind. Update both the AST and this
	// table when adding a statement.
	const stmtKinds = 30
	if len(kinds) != stmtKinds {
		var names []string
		for k := range kinds {
			names = append(names, k)
		}
		t.Errorf("table covers %d statement kinds, want %d: %s",
			len(kinds), stmtKinds, strings.Join(names, ", "))
	}
}

// TestReadOnlyEmpty pins the conservative edges: an empty script and an
// empty statement list are not read-only (nothing provably safe to retry
// or to route to a replica).
func TestReadOnlyEmpty(t *testing.T) {
	if ReadOnly(nil) {
		t.Error("ReadOnly(nil) = true, want false")
	}
	if ReadOnlyScript("") {
		t.Error(`ReadOnlyScript("") = true, want false`)
	}
}
