package hql

import (
	"strings"
	"testing"

	"hrdb/internal/catalog"
)

func explainSession(t *testing.T) *Session {
	t.Helper()
	sess := NewSession(MemTarget{DB: catalog.New()})
	if _, err := sess.Exec(`
		CREATE HIERARCHY Animal;
		CLASS Elephant IN Animal;
		CLASS RoyalElephant UNDER Elephant;
		INSTANCE Clyde UNDER RoyalElephant;
		CREATE HIERARCHY Color;
		INSTANCE Grey IN Color;
		INSTANCE White IN Color;
		CREATE RELATION AnimalColor (Animal: Animal, Color: Color);
		ASSERT AnimalColor (Elephant, Grey);
		DENY AnimalColor (RoyalElephant, Grey);
		ASSERT AnimalColor (RoyalElephant, White);
	`); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return sess
}

func TestExplainParse(t *testing.T) {
	stmts, err := Parse("EXPLAIN SELECT FROM r WHERE a UNDER c;")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmts[0].(ExplainStmt)
	if !ok {
		t.Fatalf("parsed %T", stmts[0])
	}
	inner, ok := ex.Inner.(SelectStmt)
	if !ok || inner.Relation != "r" || len(inner.Conds) != 1 {
		t.Fatalf("inner = %#v", ex.Inner)
	}
	if !ReadOnlyStmt(ex) {
		t.Fatal("EXPLAIN classified as mutating")
	}
	// EXPLAIN over a SELECT ... AS stays read-only: nothing is attached.
	stmts, err = Parse("EXPLAIN SELECT FROM r AS out;")
	if err != nil {
		t.Fatal(err)
	}
	if !ReadOnlyStmt(stmts[0]) {
		t.Fatal("EXPLAIN SELECT AS classified as mutating")
	}
	stmts, err = Parse("EXPLAIN JOIN a b AS c;")
	if err != nil {
		t.Fatal(err)
	}
	if op := stmts[0].(ExplainStmt).Inner.(BinOpStmt).Op; op != "join" {
		t.Fatalf("inner op = %q", op)
	}
	// Only SELECT and binary operators are explainable.
	for _, bad := range []string{
		"EXPLAIN HOLDS r (x);",
		"EXPLAIN SHOW RELATIONS;",
		"EXPLAIN;",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q parsed", bad)
		}
	}
}

func TestExplainExec(t *testing.T) {
	sess := explainSession(t)

	out, err := sess.Exec("EXPLAIN SELECT FROM AnimalColor WHERE Animal UNDER RoyalElephant;")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"select AnimalColor:", "est candidates:", "cost:", "full scan:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN SELECT = %q, missing %q", out, want)
		}
	}

	out, err = sess.Exec("EXPLAIN UNION AnimalColor AnimalColor AS u;")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "union AnimalColor, AnimalColor: full-scan") {
		t.Fatalf("EXPLAIN UNION = %q", out)
	}
	// Planning attached nothing.
	out, err = sess.Exec("SHOW RELATIONS;")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "u") && out != "AnimalColor" {
		t.Fatalf("EXPLAIN executed its inner statement: relations = %q", out)
	}

	// Errors in the wrapped statement propagate.
	if _, err := sess.Exec("EXPLAIN SELECT FROM Nope;"); err == nil {
		t.Fatal("EXPLAIN over a missing relation should fail")
	}
	if _, err := sess.Exec("EXPLAIN SELECT FROM AnimalColor WHERE Animal UNDER NotAClass;"); err == nil {
		t.Fatal("EXPLAIN with an unknown class should fail")
	}
}
