package hql

// Shard routing classification. Like the read-only predicate (readonly.go),
// the classification lives on each statement type: the Stmt interface
// requires a shardInfo() method, so a newly added statement kind that
// hasn't decided how it distributes fails to compile instead of silently
// defaulting to "broadcast" (or worse, a coordinator sending a keyed write
// to every shard).
//
// The four routes describe what a shard coordinator does with the
// statement, not where its data lives — that second decision (hash a
// tuple to its home shard vs. replicate it everywhere) needs the hierarchy
// catalog and is made at execution time by internal/shard:
//
//   - RouteBroadcast: catalog mutations (DDL, hierarchy edits, policy and
//     mode switches). Every shard holds a replica of the catalog, so the
//     statement must reach all of them.
//   - RouteKeyed: statements about one tuple (ASSERT/DENY, RETRACT, HOLDS,
//     WHY). The relation name and item values are the shard key; whether
//     the item hashes to one home shard or is replicated as a global tuple
//     depends on whether all its values are hierarchy instances.
//   - RouteScatter: per-tuple reads over one relation (SELECT, EXTENSION,
//     COUNT). They fan out to every shard and merge at the coordinator.
//   - RouteCoordinator: everything the coordinator executes itself —
//     multi-relation algebra over gathered snapshots, session state (RULE,
//     transaction control), and whole-database views (DUMP, SHOW, INFER,
//     EXPLAIN).
type ShardRouting int

// The routing classes, in increasing order of coordinator involvement.
const (
	RouteBroadcast ShardRouting = iota
	RouteKeyed
	RouteScatter
	RouteCoordinator
)

// String names the route for diagnostics.
func (r ShardRouting) String() string {
	switch r {
	case RouteBroadcast:
		return "broadcast"
	case RouteKeyed:
		return "keyed"
	case RouteScatter:
		return "scatter"
	case RouteCoordinator:
		return "coordinator"
	default:
		return "unknown"
	}
}

// ShardInfo is a statement's routing class plus the extracted shard key.
type ShardInfo struct {
	Route ShardRouting
	// Relation and Values are the shard key of a RouteKeyed statement
	// (Values is nil for keyed statements without an item, which do not
	// occur today).
	Relation string
	Values   []string
	// Relations names the input relations of a scatter or coordinator
	// statement that reads relation data (empty for session-state and
	// whole-database statements).
	Relations []string
}

// ShardOf returns a statement's shard routing classification and key.
func ShardOf(st Stmt) ShardInfo { return st.shardInfo() }
