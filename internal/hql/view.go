package hql

import (
	"errors"
	"fmt"

	"hrdb/internal/core"
)

// ErrNoViews reports a view statement executed against a Target that does
// not maintain materialized views (for example the plain MemTarget, or a
// replica session).
var ErrNoViews = errors.New("hql: target does not support materialized views")

// ViewCatalog is the optional interface a Target implements to support
// materialized views (CREATE/DROP/SHOW MATERIALIZED VIEW and reads that
// name a view where a relation is expected). The canonical implementation
// is internal/view's Target wrapper; the Target interface itself stays
// frozen — view support is detected by assertion.
type ViewCatalog interface {
	// CreateView registers a materialized view over a canonical defining
	// query (the Query of a CreateViewStmt), computes it, and starts
	// incremental maintenance.
	CreateView(name, query string) error
	// DropView unregisters a view.
	DropView(name string) error
	// ViewSnapshot returns an immutable relation holding the view's
	// current contents, for reads that treat the view as a relation.
	// Views without a relation form (COUNT) return an error.
	ViewSnapshot(name string) (*core.Relation, error)
	// ViewNames lists registered views, sorted.
	ViewNames() []string
	// ViewStatus renders one view's definition and maintenance state.
	ViewStatus(name string) (string, error)
}

// Materializable reports whether a statement may define a materialized
// view: a side-effect-free query over one base relation whose result is a
// row set the view layer knows how to maintain — SELECT without AS,
// EXTENSION, or COUNT.
func Materializable(st Stmt) error {
	switch st := st.(type) {
	case SelectStmt:
		if st.As != "" {
			return fmt.Errorf("hql: a view query must be read-only; drop the AS clause")
		}
		return nil
	case ExtensionStmt, CountStmt:
		return nil
	default:
		return fmt.Errorf("hql: %T cannot define a materialized view (want SELECT, EXTENSION or COUNT)", st)
	}
}

// viewCatalog returns the target's view catalog, or ErrNoViews.
func (s *Session) viewCatalog() (ViewCatalog, error) {
	if vc, ok := s.target.(ViewCatalog); ok {
		return vc, nil
	}
	return nil, ErrNoViews
}

// snapshotOrView resolves a relation name for a snapshot-based read,
// falling back to the view catalog when the catalog has no such relation:
// this is what exposes materialized views to SELECT, EXTENSION, COUNT,
// algebra and SHOW RELATION as ordinary relations.
func (s *Session) snapshotOrView(name string) (*core.Relation, error) {
	r, err := s.target.Database().Snapshot(name)
	if err == nil {
		return r, nil
	}
	if vc, ok := s.target.(ViewCatalog); ok {
		if vr, verr := vc.ViewSnapshot(name); verr == nil {
			return vr, nil
		}
	}
	return nil, err
}

// evaluateOrView point-evaluates an item against a relation, falling back
// to a view snapshot for HOLDS/WHY on views.
func (s *Session) evaluateOrView(rel string, values []string) (core.Verdict, error) {
	v, err := s.target.Database().Evaluate(rel, values...)
	if err == nil {
		return v, nil
	}
	if vc, ok := s.target.(ViewCatalog); ok {
		if vr, verr := vc.ViewSnapshot(rel); verr == nil {
			return vr.Evaluate(core.Item(values))
		}
	}
	return core.Verdict{}, err
}
