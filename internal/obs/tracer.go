package obs

import (
	"sync"
	"time"
)

// Span is one completed timed operation reported to a Tracer: a statement
// execution, a batch evaluation, a WAL flush. Spans are emitted after the
// fact (start plus duration), so a Tracer never has to pair events.
type Span struct {
	// Name identifies the operation ("hql.exec", "core.EvaluateBatch").
	Name string
	// Start is when the operation began.
	Start time.Time
	// Duration is how long it ran.
	Duration time.Duration
	// Attrs carry operation details (statement kind, batch size).
	Attrs []Label
	// Err is the operation's failure, nil on success.
	Err error
}

// Tracer receives completed spans. Implementations must be safe for
// concurrent use; emitting a span must be cheap (the hooks sit on request
// paths). A nil Tracer everywhere means tracing is off and costs nothing.
type Tracer interface {
	Span(Span)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Span)

// Span implements Tracer.
func (f TracerFunc) Span(s Span) { f(s) }

// SpanCollector is a Tracer that records every span, for tests and
// interactive inspection.
type SpanCollector struct {
	mu    sync.Mutex
	spans []Span
}

// Span implements Tracer.
func (c *SpanCollector) Span(s Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans.
func (c *SpanCollector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// Reset discards the collected spans.
func (c *SpanCollector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.mu.Unlock()
}
