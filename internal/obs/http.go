package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an HTTP handler exposing the registry:
//
//	GET /metrics        Prometheus text exposition format
//	GET /debug/pprof/…  the standard Go profiles (cpu, heap, goroutine, …)
//
// The pprof routes are mounted explicitly on a private mux — importing this
// package never touches http.DefaultServeMux.
func Handler(r *Registry) http.Handler {
	if r == nil {
		r = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a background HTTP server exposing a registry's metrics
// and the Go profiles (see Handler).
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// StartMetricsServer listens on addr ("host:port"; port 0 picks a free
// port) and serves Handler(r) in a background goroutine. Close stops it.
func StartMetricsServer(addr string, r *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{srv: srv, ln: ln}, nil
}

// Addr returns the bound address.
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close stops the server immediately (in-flight scrapes are cut off; a
// metrics endpoint has nothing worth draining).
func (m *MetricsServer) Close() error { return m.srv.Close() }
