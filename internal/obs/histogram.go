package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync"
	"time"
)

// Histogram buckets are fixed log-scale: observation v lands in bucket
// bits.Len64(v), so bucket i (i ≥ 1) covers [2^(i-1), 2^i − 1] and bucket 0
// holds exact zeros. The upper bound 2^i − 1 is the bucket's `le` in the
// Prometheus rendering. Fixed log₂ buckets need no configuration, cover the
// full uint64 range (nanoseconds to hours, bytes to terabytes), and cost
// one BSR instruction to select.
const (
	// histBuckets is bits.Len64's range: 0 through 64.
	histBuckets = 65
	// histStripes spreads concurrent observers over independent locks;
	// must be a power of two.
	histStripes = 8
)

// histStripe is one independently locked shard of a histogram.
type histStripe struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	sum    uint64
}

// Histogram is a lock-striped, fixed-bucket log-scale histogram. Observe
// picks one of histStripes stripes with the runtime's cheap per-thread
// random source, so concurrent observers contend only 1/histStripes of the
// time; Snapshot merges the stripes.
type Histogram struct {
	name    string
	labels  string // rendered label body ("" when unlabeled)
	stripes [histStripes]histStripe
}

// Observe records one value (negative values count as zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	s := &h.stripes[rand.Uint32()&(histStripes-1)]
	s.mu.Lock()
	s.counts[b]++
	s.sum += uint64(v)
	s.mu.Unlock()
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Bucket is one populated histogram bucket: Le is the inclusive upper
// bound of the bucket's value range.
type Bucket struct {
	Le    uint64
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram. Only populated
// buckets appear, in ascending Le order, and their counts always sum to
// Count (each stripe is copied under its lock).
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets []Bucket
}

// Mean returns the mean observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketLe returns the inclusive upper bound of bucket i.
func bucketLe(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Snapshot merges the stripes into one consistent view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	var s HistogramSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for b, c := range st.counts {
			counts[b] += c
		}
		s.sumAdd(st.sum)
		st.mu.Unlock()
	}
	for b, c := range counts {
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Le: bucketLe(b), Count: c})
		s.Count += c
	}
	return s
}

// sumAdd accumulates a stripe's sum (kept as a method so Snapshot reads
// every stripe field under that stripe's lock).
func (s *HistogramSnapshot) sumAdd(v uint64) { s.Sum += v }
