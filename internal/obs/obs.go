// Package obs is the dependency-free observability layer of the database:
// a metrics registry (atomic counters and gauges, lock-striped log-scale
// histograms), a lightweight span/tracing hook, and a slow-query log.
//
// The package deliberately has no third-party dependencies and a hot path
// measured in nanoseconds: counters are single atomic adds, histograms take
// one of eight stripe locks chosen by the runtime's cheap per-thread random
// source, and rendering (Prometheus text format, Snapshot) walks the
// registry only when asked. Layers declare their metrics as package
// variables against the Default registry; every instrument is process-wide,
// so two stores or two servers in one process aggregate into the same
// counters (the standard process-metrics model).
//
// Metric naming follows the Prometheus conventions: `hrdb_<layer>_<what>`
// with `_total` for counters and the unit (`_ns`, `_bytes`) in the name.
// docs/OBSERVABILITY.md lists every metric the database emits.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label (a Prometheus-style key/value pair).
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one and returns the new value (useful for cheap sampling
// decisions: time the work only when Inc()&mask == 0).
func (c *Counter) Inc() uint64 { return c.v.Add(1) }

// Add adds n and returns the new value.
func (c *Counter) Add(n uint64) uint64 { return c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, open connections).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. The zero value is not usable;
// create registries with NewRegistry or use Default. Lookup methods are
// get-or-create and safe for concurrent use, but hot paths should hold the
// returned pointer instead of re-resolving the name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry is the process-wide registry every layer registers into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// metricID renders the registry key for a name and label set: the labels
// are sorted so the same set always maps to the same metric.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	return name + "{" + labelBody(labels) + "}"
}

// labelBody renders `k="v",k2="v2"` with keys sorted.
func labelBody(labels []Label) string {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, len(sorted))
	for i, l := range sorted {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

// checkKind panics when a metric name is reused with a different type —
// always a programming error, caught at first use.
func (r *Registry) checkKind(id, want string) {
	kinds := []struct {
		kind string
		ok   bool
	}{
		{"counter", r.counters[id] != nil},
		{"gauge", r.gauges[id] != nil},
		{"histogram", r.hists[id] != nil},
	}
	for _, k := range kinds {
		if k.ok && k.kind != want {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", id, k.kind, want))
		}
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	r.checkKind(id, "counter")
	c := &Counter{}
	r.counters[id] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	r.checkKind(id, "gauge")
	g := &Gauge{}
	r.gauges[id] = g
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	r.checkKind(id, "histogram")
	h := &Histogram{name: name, labels: labelBody(labels)}
	r.hists[id] = h
	return h
}

// Series is a label-curried view of a registry: metrics created through it
// carry the bound labels without repeating them at every call site. The
// canonical use is per-tenant instrumentation — bind {tenant="x"} once and
// declare the tenant's counters against the shared metric names, so every
// tenant becomes its own time series under one # TYPE family.
type Series struct {
	r      *Registry
	labels []Label
}

// With returns a Series bound to the given labels.
func (r *Registry) With(labels ...Label) *Series {
	return &Series{r: r, labels: append([]Label(nil), labels...)}
}

// merge combines the bound labels with per-call extras.
func (s *Series) merge(extra []Label) []Label {
	if len(extra) == 0 {
		return s.labels
	}
	out := make([]Label, 0, len(s.labels)+len(extra))
	out = append(out, s.labels...)
	return append(out, extra...)
}

// Counter returns (creating if needed) the named counter with the bound
// labels applied.
func (s *Series) Counter(name string, extra ...Label) *Counter {
	return s.r.Counter(name, s.merge(extra)...)
}

// Gauge returns (creating if needed) the named gauge with the bound labels
// applied.
func (s *Series) Gauge(name string, extra ...Label) *Gauge {
	return s.r.Gauge(name, s.merge(extra)...)
}

// Histogram returns (creating if needed) the named histogram with the
// bound labels applied.
func (s *Series) Histogram(name string, extra ...Label) *Histogram {
	return s.r.Histogram(name, s.merge(extra)...)
}

// Snapshot is a point-in-time copy of every metric in a registry, keyed by
// the full metric id (name plus sorted labels).
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every metric. Counters and gauges are atomic loads;
// each histogram is internally consistent (per-stripe locking guarantees
// the bucket counts of a snapshot sum to its Count).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for id, c := range r.counters {
		counters[id] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for id, g := range r.gauges {
		gauges[id] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for id, h := range r.hists {
		hists[id] = h
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for id, c := range counters {
		s.Counters[id] = c.Value()
	}
	for id, g := range gauges {
		s.Gauges[id] = g.Value()
	}
	for id, h := range hists {
		s.Histograms[id] = h.Snapshot()
	}
	return s
}

// promEntry is one renderable metric for the Prometheus text exposition:
// entries sharing a base name are grouped under one # TYPE header.
type promEntry struct {
	base   string
	kind   string
	labels string
	render func(w io.Writer, base, labels string)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (metrics grouped by base name, buckets cumulative, +Inf last).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	var entries []promEntry
	for id, c := range r.counters {
		base, labels := splitID(id)
		v := c.Value()
		entries = append(entries, promEntry{base: base, kind: "counter", labels: labels,
			render: func(w io.Writer, base, labels string) {
				fmt.Fprintf(w, "%s%s %d\n", base, braced(labels), v)
			}})
	}
	for id, g := range r.gauges {
		base, labels := splitID(id)
		v := g.Value()
		entries = append(entries, promEntry{base: base, kind: "gauge", labels: labels,
			render: func(w io.Writer, base, labels string) {
				fmt.Fprintf(w, "%s%s %d\n", base, braced(labels), v)
			}})
	}
	for _, h := range r.hists {
		snap := h.Snapshot()
		entries = append(entries, promEntry{base: h.name, kind: "histogram", labels: h.labels,
			render: func(w io.Writer, base, labels string) {
				writePromHistogram(w, base, labels, snap)
			}})
	}
	r.mu.Unlock()

	sort.Slice(entries, func(i, j int) bool {
		if entries[i].base != entries[j].base {
			return entries[i].base < entries[j].base
		}
		return entries[i].labels < entries[j].labels
	})
	bw := &errWriter{w: w}
	lastBase := ""
	for _, e := range entries {
		if e.base != lastBase {
			fmt.Fprintf(bw, "# TYPE %s %s\n", e.base, e.kind)
			lastBase = e.base
		}
		e.render(bw, e.base, e.labels)
	}
	return bw.err
}

// RenderText returns the Prometheus text rendering as a string.
func (r *Registry) RenderText() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// splitID separates a metric id into base name and label body.
func splitID(id string) (base, labels string) {
	if i := strings.IndexByte(id, '{'); i >= 0 {
		return id[:i], strings.TrimSuffix(id[i+1:], "}")
	}
	return id, ""
}

// braced wraps a non-empty label body in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// writePromHistogram renders one histogram: cumulative buckets up to the
// highest populated one, then +Inf, _sum, and _count.
func writePromHistogram(w io.Writer, base, labels string, s HistogramSnapshot) {
	join := func(extra string) string {
		if labels == "" {
			return extra
		}
		return labels + "," + extra
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, join(fmt.Sprintf("le=%q", fmt.Sprint(b.Le))), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, join(`le="+Inf"`), s.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", base, braced(labels), s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", base, braced(labels), s.Count)
}

// errWriter remembers the first write error so rendering can ignore
// per-line results.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
