package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Stage is one timed phase of a statement's execution.
type Stage struct {
	Name     string
	Duration time.Duration
}

// SlowQuery describes one statement that crossed the slow-query threshold.
type SlowQuery struct {
	// Time is when execution began.
	Time time.Time
	// Statement is the executed HQL text (the log truncates it on output).
	Statement string
	// Duration is the total wall-clock time.
	Duration time.Duration
	// Stages are the per-phase timings ("parse", "exec:holds", …).
	Stages []Stage
}

// Dominant returns the name of the longest stage ("" when none were
// recorded) — the "where did the time actually go" answer.
func (q SlowQuery) Dominant() string {
	name, best := "", time.Duration(-1)
	for _, s := range q.Stages {
		if s.Duration > best {
			name, best = s.Name, s.Duration
		}
	}
	return name
}

// maxSlowStatement bounds the statement text in one log line.
const maxSlowStatement = 512

// SlowQueryLog writes one line per statement slower than a threshold.
// Entries are serialized by an internal mutex so concurrent sessions never
// interleave lines; the counter hrdb_slow_queries_total (Default registry)
// counts recorded entries. A nil *SlowQueryLog is a valid no-op receiver,
// so callers can hold one unconditionally.
type SlowQueryLog struct {
	w         io.Writer
	threshold time.Duration
	mu        sync.Mutex
	count     *Counter
}

// NewSlowQueryLog creates a log that records statements with Duration ≥
// threshold to w. A zero threshold records everything.
func NewSlowQueryLog(w io.Writer, threshold time.Duration) *SlowQueryLog {
	return &SlowQueryLog{
		w:         w,
		threshold: threshold,
		count:     Default().Counter("hrdb_slow_queries_total"),
	}
}

// Threshold returns the configured threshold.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record logs the query if it crossed the threshold, reporting whether it
// was written. The line format is stable and grep-friendly:
//
//	slow-query t=<RFC3339> dur=<total> stage=<dominant> stages="<name>=<d> …" stmt="<text>"
func (l *SlowQueryLog) Record(q SlowQuery) bool {
	if l == nil || q.Duration < l.threshold {
		return false
	}
	stmt := strings.TrimSpace(q.Statement)
	if len(stmt) > maxSlowStatement {
		stmt = stmt[:maxSlowStatement] + "…"
	}
	parts := make([]string, len(q.Stages))
	for i, s := range q.Stages {
		parts[i] = fmt.Sprintf("%s=%s", s.Name, s.Duration)
	}
	line := fmt.Sprintf("slow-query t=%s dur=%s stage=%s stages=%q stmt=%q\n",
		q.Time.UTC().Format(time.RFC3339Nano), q.Duration, q.Dominant(),
		strings.Join(parts, " "), stmt)
	l.mu.Lock()
	_, err := io.WriteString(l.w, line)
	l.mu.Unlock()
	if err == nil {
		l.count.Inc()
	}
	return err == nil
}
