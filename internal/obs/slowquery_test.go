package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowQueryThreshold(t *testing.T) {
	var buf strings.Builder
	l := NewSlowQueryLog(&buf, 10*time.Millisecond)
	fast := SlowQuery{Statement: "HOLDS x", Duration: time.Millisecond}
	if l.Record(fast) {
		t.Error("fast query was recorded")
	}
	slow := SlowQuery{
		Time:      time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		Statement: "  SELECT big  ",
		Duration:  25 * time.Millisecond,
		Stages: []Stage{
			{Name: "parse", Duration: time.Millisecond},
			{Name: "exec:select", Duration: 24 * time.Millisecond},
		},
	}
	if !l.Record(slow) {
		t.Fatal("slow query was not recorded")
	}
	line := buf.String()
	for _, want := range []string{
		"slow-query t=2026-01-02T03:04:05Z",
		"dur=25ms",
		"stage=exec:select",
		`stages="parse=1ms exec:select=24ms"`,
		`stmt="SELECT big"`, // trimmed
	} {
		if !strings.Contains(line, want) {
			t.Errorf("line missing %q: %s", want, line)
		}
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Errorf("expected exactly one line, got %d", n)
	}
}

func TestSlowQueryTruncation(t *testing.T) {
	var buf strings.Builder
	l := NewSlowQueryLog(&buf, 0)
	long := strings.Repeat("x", maxSlowStatement+100)
	l.Record(SlowQuery{Statement: long, Duration: time.Second})
	if strings.Contains(buf.String(), long) {
		t.Error("statement was not truncated")
	}
	if !strings.Contains(buf.String(), strings.Repeat("x", maxSlowStatement)+"…") {
		t.Error("truncated statement missing ellipsis marker")
	}
}

func TestSlowQueryNilReceiver(t *testing.T) {
	var l *SlowQueryLog
	if l.Record(SlowQuery{Duration: time.Hour}) {
		t.Error("nil log recorded something")
	}
	if l.Threshold() != 0 {
		t.Error("nil log threshold not zero")
	}
}

func TestSlowQueryDominant(t *testing.T) {
	q := SlowQuery{}
	if q.Dominant() != "" {
		t.Errorf("empty stages dominant = %q", q.Dominant())
	}
	q.Stages = []Stage{{"a", 2}, {"b", 5}, {"c", 3}}
	if q.Dominant() != "b" {
		t.Errorf("dominant = %q, want b", q.Dominant())
	}
}

// TestSlowQueryConcurrent: concurrent Records never interleave lines.
func TestSlowQueryConcurrent(t *testing.T) {
	var buf safeBuilder
	l := NewSlowQueryLog(&buf, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Record(SlowQuery{Statement: "S", Duration: time.Second})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "slow-query t=") {
			t.Fatalf("malformed line: %q", ln)
		}
	}
}

// safeBuilder guards a strings.Builder for the -race run (the log's own
// mutex serializes writes, but the final String() read needs one too).
type safeBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
