package obs

import (
	"strings"
	"testing"
)

// TestSeriesCurriesLabels: metrics created through a Series carry its
// labels, resolve to the same instances as the equivalent direct calls
// (get-or-create by full id), and extra labels merge rather than replace.
func TestSeriesCurriesLabels(t *testing.T) {
	r := NewRegistry()
	s := r.With(Label{"tenant", "acme"})

	c := s.Counter("req_total")
	c.Add(3)
	if direct := r.Counter("req_total", Label{"tenant", "acme"}); direct != c {
		t.Error("series counter and direct labeled counter are different instances")
	}
	if bare := r.Counter("req_total"); bare == c {
		t.Error("series counter aliases the unlabeled series")
	}

	g := s.Gauge("inflight")
	g.Set(2)
	h := s.Histogram("lat_ns")
	h.Observe(7)
	merged := s.Counter("req_total", Label{"verb", "exec"})
	merged.Inc()

	snap := r.Snapshot()
	if snap.Counters[`req_total{tenant="acme"}`] != 3 {
		t.Errorf("counter snapshot = %v", snap.Counters)
	}
	if snap.Counters[`req_total{tenant="acme",verb="exec"}`] != 1 {
		t.Errorf("merged-label counter missing: %v", snap.Counters)
	}
	if snap.Gauges[`inflight{tenant="acme"}`] != 2 {
		t.Errorf("gauge snapshot = %v", snap.Gauges)
	}
	if hs := snap.Histograms[`lat_ns{tenant="acme"}`]; hs.Count != 1 || hs.Sum != 7 {
		t.Errorf("histogram snapshot = %+v", hs)
	}

	// Two series over the same registry are distinct label scopes.
	r.With(Label{"tenant", "beta"}).Counter("req_total").Add(5)
	text := r.RenderText()
	for _, want := range []string{
		`req_total{tenant="acme"} 3`,
		`req_total{tenant="beta"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q in:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE req_total"); n != 1 {
		t.Errorf("req_total TYPE header appears %d times, want 1", n)
	}
}
