package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrent: N goroutines hammering one counter and one
// gauge lose no updates (run under -race via `make test-obs`).
func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total")
	g := r.Gauge("test_gauge")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

// TestRegistryGetOrCreate: the same name yields the same metric; labels
// participate in identity regardless of order; kind reuse panics.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Error("same name returned different counters")
	}
	l1 := r.Counter("b_total", Label{"x", "1"}, Label{"y", "2"})
	l2 := r.Counter("b_total", Label{"y", "2"}, Label{"x", "1"})
	if l1 != l2 {
		t.Error("label order changed metric identity")
	}
	if r.Counter("b_total", Label{"x", "1"}) == l1 {
		t.Error("different label sets collided")
	}
	defer func() {
		if recover() == nil {
			t.Error("reusing a counter name as a gauge should panic")
		}
	}()
	r.Gauge("a_total")
}

// TestHistogramBucketBoundaries: observations land in the log₂ bucket whose
// inclusive upper bound is 2^i − 1.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist")
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, -5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := map[uint64]uint64{
		0:    2, // 0 and the clamped -5
		1:    1, // 1
		3:    2, // 2, 3
		7:    2, // 4, 7
		15:   1, // 8
		1023: 1, // 1023
		2047: 1, // 1024
	}
	if s.Count != 10 {
		t.Fatalf("count = %d, want 10", s.Count)
	}
	got := map[uint64]uint64{}
	for _, b := range s.Buckets {
		got[b.Le] = b.Count
	}
	for le, n := range want {
		if got[le] != n {
			t.Errorf("bucket le=%d count = %d, want %d (all: %v)", le, got[le], n, got)
		}
	}
	if s.Sum != 0+1+2+3+4+7+8+1023+1024+0 {
		t.Errorf("sum = %d", s.Sum)
	}
}

// TestHistogramSnapshotConsistency: snapshots taken during a concurrent
// observation storm always satisfy Σ bucket counts == Count.
func TestHistogramSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist_conc")
	const workers, per = 4, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + int64(i)%911)
			}
		}(int64(w * 13))
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		s := h.Snapshot()
		var sum uint64
		for _, b := range s.Buckets {
			sum += b.Count
		}
		if sum != s.Count {
			t.Fatalf("snapshot inconsistent: Σbuckets=%d Count=%d", sum, s.Count)
		}
		select {
		case <-done:
			if final := h.Snapshot(); final.Count != workers*per {
				t.Fatalf("final count = %d, want %d", final.Count, workers*per)
			}
			return
		default:
		}
	}
}

// TestWritePrometheus: the text rendering groups by base name, emits
// cumulative buckets, and ends histograms with +Inf == count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(3)
	r.Counter("m_total", Label{"mode", "a"}).Add(1)
	r.Counter("m_total", Label{"mode", "b"}).Add(2)
	r.Gauge("depth").Set(-4)
	h := r.Histogram("lat_ns", Label{"mode", "a"})
	h.Observe(1) // bucket le=1
	h.Observe(3) // bucket le=3
	text := r.RenderText()

	for _, want := range []string{
		"# TYPE x_total counter\nx_total 3\n",
		"# TYPE m_total counter\nm_total{mode=\"a\"} 1\nm_total{mode=\"b\"} 2\n",
		"# TYPE depth gauge\ndepth -4\n",
		"# TYPE lat_ns histogram\n",
		"lat_ns_bucket{mode=\"a\",le=\"1\"} 1\n",
		"lat_ns_bucket{mode=\"a\",le=\"3\"} 2\n", // cumulative
		"lat_ns_bucket{mode=\"a\",le=\"+Inf\"} 2\n",
		"lat_ns_sum{mode=\"a\"} 4\n",
		"lat_ns_count{mode=\"a\"} 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q in:\n%s", want, text)
		}
	}
	if n := strings.Count(text, "# TYPE m_total"); n != 1 {
		t.Errorf("m_total TYPE header appears %d times, want 1", n)
	}
}

// TestSnapshotMaps: Snapshot copies every metric with its full id.
func TestSnapshotMaps(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", Label{"k", "v"}).Add(7)
	r.Gauge("g").Set(9)
	r.Histogram("h").Observe(100)
	s := r.Snapshot()
	if s.Counters[`c_total{k="v"}`] != 7 {
		t.Errorf("counter snapshot = %v", s.Counters)
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("gauge snapshot = %v", s.Gauges)
	}
	hs := s.Histograms["h"]
	if hs.Count != 1 || hs.Sum != 100 {
		t.Errorf("hist snapshot = %+v", hs)
	}
	if hs.Mean() != 100 {
		t.Errorf("mean = %v, want 100", hs.Mean())
	}
}

// TestTracerCollector: TracerFunc and SpanCollector round-trip spans.
func TestTracerCollector(t *testing.T) {
	var got []string
	f := TracerFunc(func(s Span) { got = append(got, s.Name) })
	f.Span(Span{Name: "one"})
	if len(got) != 1 || got[0] != "one" {
		t.Errorf("TracerFunc got %v", got)
	}
	c := &SpanCollector{}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Span(Span{Name: "s"})
			}
		}()
	}
	wg.Wait()
	if n := len(c.Spans()); n != 400 {
		t.Errorf("collected %d spans, want 400", n)
	}
	c.Reset()
	if n := len(c.Spans()); n != 0 {
		t.Errorf("after reset: %d spans", n)
	}
}
