package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestMetricsServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_test_total").Add(42)
	ms, err := StartMetricsServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "http_test_total 42") {
		t.Errorf("metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + ms.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index missing profile list:\n%s", body)
	}

	if err := ms.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if _, err := http.Get("http://" + ms.Addr() + "/metrics"); err == nil {
		t.Error("server still serving after Close")
	}
}

func TestHandlerNilRegistryUsesDefault(t *testing.T) {
	Default().Counter("handler_default_total").Inc()
	ms, err := StartMetricsServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "handler_default_total") {
		t.Error("default registry metrics not served")
	}
}
