package tvl

import (
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

func fixture(t *testing.T) *core.Relation {
	t.Helper()
	h := hierarchy.New("Animal")
	steps := []func() error{
		func() error { return h.AddClass("Bird") },
		func() error { return h.AddClass("Penguin", "Bird") },
		func() error { return h.AddClass("GP", "Penguin") },
		func() error { return h.AddClass("AFP", "Penguin") },
		func() error { return h.AddInstance("Tweety", "Bird") },
		func() error { return h.AddInstance("Patricia", "GP", "AFP") },
		func() error { return h.AddInstance("Dodo") },
	}
	for _, f := range steps {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	r := core.NewRelation("Flies", s)
	for _, f := range []func() error{
		func() error { return r.Assert("Bird") },
		func() error { return r.Deny("Penguin") },
	} {
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestEvaluateThreeValues(t *testing.T) {
	r := fixture(t)
	cases := []struct {
		who  string
		want Truth
	}{
		{"Tweety", True},
		{"Penguin", False},
		{"Dodo", Unknown}, // no applicable tuple: open world says unknown
	}
	for _, c := range cases {
		got, err := Holds(r, c.who)
		if err != nil {
			t.Fatalf("%s: %v", c.who, err)
		}
		if got != c.want {
			t.Errorf("Holds(%s) = %v, want %v", c.who, got, c.want)
		}
	}
}

func TestConflictIsUnknown(t *testing.T) {
	r := fixture(t)
	if err := r.Deny("GP"); err != nil {
		t.Fatal(err)
	}
	if err := r.Assert("AFP"); err != nil {
		t.Fatal(err)
	}
	got, err := Holds(r, "Patricia")
	if err != nil {
		t.Fatal(err)
	}
	if got != Unknown {
		t.Fatalf("conflicted Patricia = %v, want unknown", got)
	}
}

func TestValidationErrorsPropagate(t *testing.T) {
	r := fixture(t)
	if _, err := Holds(r, "NotAThing"); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, err := Holds(r, "a", "b"); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestKleeneTables(t *testing.T) {
	vals := []Truth{False, Unknown, True}
	// Kleene strong conjunction/disjunction truth tables.
	wantAnd := [3][3]Truth{
		{False, False, False},
		{False, Unknown, Unknown},
		{False, Unknown, True},
	}
	wantOr := [3][3]Truth{
		{False, Unknown, True},
		{Unknown, Unknown, True},
		{True, True, True},
	}
	for i, a := range vals {
		for j, b := range vals {
			if got := And(a, b); got != wantAnd[i][j] {
				t.Errorf("And(%v,%v) = %v, want %v", a, b, got, wantAnd[i][j])
			}
			if got := Or(a, b); got != wantOr[i][j] {
				t.Errorf("Or(%v,%v) = %v, want %v", a, b, got, wantOr[i][j])
			}
		}
	}
	if Not(True) != False || Not(False) != True || Not(Unknown) != Unknown {
		t.Error("Not wrong")
	}
}

func TestStringAndFromBool(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("String wrong")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

// TestDeMorganProperty: ¬(a ∧ b) == (¬a ∨ ¬b) over all pairs.
func TestDeMorganProperty(t *testing.T) {
	vals := []Truth{False, Unknown, True}
	for _, a := range vals {
		for _, b := range vals {
			if Not(And(a, b)) != Or(Not(a), Not(b)) {
				t.Fatalf("De Morgan fails at %v,%v", a, b)
			}
			if Not(Or(a, b)) != And(Not(a), Not(b)) {
				t.Fatalf("De Morgan (dual) fails at %v,%v", a, b)
			}
		}
	}
}
