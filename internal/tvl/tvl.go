// Package tvl implements the three-valued, open-world reading of
// hierarchical relations sketched in §4 of Jagadish (SIGMOD '89): "through
// the use of … three-valued (positive, negative, and unknown) rather than
// two-valued assertions, it may be possible to have a sound and
// conceptually pleasing treatment of partial information."
//
// Under the closed-world assumption the universal negated tuple makes every
// unmentioned item false; dropping it, an item with no applicable tuple is
// Unknown. Items whose strongest-binding tuples conflict are also reported
// Unknown here (with the conflict preserved in the error), matching the
// paper's footnote 4: without the closed world a negated tuple reads "not
// known to hold".
package tvl

import (
	"context"
	"errors"

	"hrdb/internal/core"
)

// Truth is a Kleene three-valued truth value.
type Truth int8

// The three truth values.
const (
	False Truth = iota
	Unknown
	True
)

// String names the truth value.
func (t Truth) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// FromBool lifts a boolean.
func FromBool(b bool) Truth {
	if b {
		return True
	}
	return False
}

// And is Kleene conjunction.
func And(a, b Truth) Truth {
	if a == False || b == False {
		return False
	}
	if a == True && b == True {
		return True
	}
	return Unknown
}

// Or is Kleene disjunction.
func Or(a, b Truth) Truth {
	if a == True || b == True {
		return True
	}
	if a == False && b == False {
		return False
	}
	return Unknown
}

// Not is Kleene negation.
func Not(a Truth) Truth {
	switch a {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Evaluate computes the open-world truth value of an item: True/False when
// a tuple binds strongest, Unknown when no tuple applies (the closed-world
// default) or when the strongest binders conflict. Validation errors
// (arity, unknown values) are returned as errors.
func Evaluate(r *core.Relation, item core.Item) (Truth, error) {
	return interpret(r.Evaluate(item))
}

// interpret maps a closed-world verdict and error to the open-world Truth:
// ambiguity conflicts and closed-world defaults both read Unknown.
func interpret(v core.Verdict, err error) (Truth, error) {
	if err != nil {
		var ce *core.ConflictError
		if errors.As(err, &ce) {
			return Unknown, nil
		}
		return Unknown, err
	}
	if v.Default {
		return Unknown, nil
	}
	return FromBool(v.Value), nil
}

// Holds is Evaluate on a value list.
func Holds(r *core.Relation, values ...string) (Truth, error) {
	return Evaluate(r, core.Item(values))
}

// EvaluateBatch computes open-world truth values for every item in bulk,
// fanning the underlying evaluation across cores (core.EvaluateEach).
// Per-item conflicts are data here — they map to Unknown rather than
// aborting the batch — so only validation failures and ctx cancellation
// surface as the error (the lowest-index one, deterministically).
func EvaluateBatch(ctx context.Context, r *core.Relation, items []core.Item, opts ...core.BatchOption) ([]Truth, error) {
	verdicts, errs, err := r.EvaluateEach(ctx, items, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]Truth, len(items))
	var firstErr error
	firstIdx := len(items)
	for i := range items {
		t, err := interpret(verdicts[i], errs[i])
		if err != nil && i < firstIdx {
			firstIdx, firstErr = i, err
		}
		out[i] = t
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
