package hierarchy

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// animals builds the Figure 1a hierarchy from the paper:
//
//	Animal → Bird → Canary → Tweety
//	               → Penguin → GalapagosPenguin → {Paul, Patricia}
//	                         → AmazingFlyingPenguin → {Pamela, Patricia, Peter}
func animals(t *testing.T) *Hierarchy {
	t.Helper()
	h := New("Animal")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(h.AddClass("Bird"))
	must(h.AddClass("Canary", "Bird"))
	must(h.AddInstance("Tweety", "Canary"))
	must(h.AddClass("Penguin", "Bird"))
	must(h.AddClass("GalapagosPenguin", "Penguin"))
	must(h.AddClass("AmazingFlyingPenguin", "Penguin"))
	must(h.AddInstance("Paul", "GalapagosPenguin"))
	must(h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	must(h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	must(h.AddInstance("Peter", "AmazingFlyingPenguin"))
	return h
}

func TestNewHasRoot(t *testing.T) {
	h := New("Animal")
	if !h.Has("Animal") {
		t.Fatal("root missing")
	}
	if h.Domain() != "Animal" {
		t.Fatalf("Domain() = %q", h.Domain())
	}
	if h.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", h.Len())
	}
}

func TestAddClassDefaultsUnderRoot(t *testing.T) {
	h := New("D")
	if err := h.AddClass("c"); err != nil {
		t.Fatal(err)
	}
	if got := h.Parents("c"); !reflect.DeepEqual(got, []string{"D"}) {
		t.Fatalf("Parents(c) = %v", got)
	}
}

func TestAddDuplicate(t *testing.T) {
	h := New("D")
	if err := h.AddClass("c"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass("c"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("got %v, want ErrDuplicate", err)
	}
	if err := h.AddClass("D"); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("domain name reuse: got %v, want ErrDuplicate", err)
	}
}

func TestAddUnknownParent(t *testing.T) {
	h := New("D")
	if err := h.AddClass("c", "nope"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v, want ErrUnknown", err)
	}
}

func TestAddEmptyName(t *testing.T) {
	h := New("D")
	if err := h.AddClass(""); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("got %v, want ErrEmptyName", err)
	}
}

func TestInstanceCannotParent(t *testing.T) {
	h := New("D")
	if err := h.AddInstance("i"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass("c", "i"); !errors.Is(err, ErrInstanceParent) {
		t.Fatalf("got %v, want ErrInstanceParent", err)
	}
	if err := h.AddClass("c"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddEdge("i", "c"); !errors.Is(err, ErrInstanceParent) {
		t.Fatalf("AddEdge from instance: got %v, want ErrInstanceParent", err)
	}
}

func TestSubsumesTransitive(t *testing.T) {
	h := animals(t)
	cases := []struct {
		anc, desc string
		want      bool
	}{
		{"Animal", "Tweety", true},
		{"Bird", "Paul", true},
		{"Penguin", "Patricia", true},
		{"GalapagosPenguin", "Patricia", true},
		{"AmazingFlyingPenguin", "Patricia", true},
		{"Canary", "Paul", false},
		{"Tweety", "Bird", false},
		{"Bird", "Bird", true}, // reflexive
		{"nope", "Bird", false},
		{"Bird", "nope", false},
	}
	for _, c := range cases {
		if got := h.Subsumes(c.anc, c.desc); got != c.want {
			t.Errorf("Subsumes(%q,%q) = %v, want %v", c.anc, c.desc, got, c.want)
		}
	}
	if h.StrictlySubsumes("Bird", "Bird") {
		t.Error("StrictlySubsumes must be irreflexive")
	}
	if !h.StrictlySubsumes("Bird", "Paul") {
		t.Error("StrictlySubsumes(Bird,Paul) = false")
	}
}

func TestAddEdgeCycleRejected(t *testing.T) {
	h := animals(t)
	if err := h.AddEdge("Penguin", "Bird"); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v, want ErrCycle", err)
	}
}

func TestLeaves(t *testing.T) {
	h := animals(t)
	want := []string{"Pamela", "Patricia", "Paul", "Peter"}
	if got := h.Leaves("Penguin"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Leaves(Penguin) = %v, want %v", got, want)
	}
	if got := h.Leaves("Tweety"); !reflect.DeepEqual(got, []string{"Tweety"}) {
		t.Fatalf("Leaves(Tweety) = %v", got)
	}
	all := h.AllLeaves()
	wantAll := []string{"Pamela", "Patricia", "Paul", "Peter", "Tweety"}
	if !reflect.DeepEqual(all, wantAll) {
		t.Fatalf("AllLeaves = %v, want %v", all, wantAll)
	}
}

func TestLeavesIncludesChildlessClass(t *testing.T) {
	h := New("D")
	if err := h.AddClass("empty"); err != nil {
		t.Fatal(err)
	}
	if got := h.Leaves("D"); !reflect.DeepEqual(got, []string{"empty"}) {
		t.Fatalf("Leaves(D) = %v, want [empty]", got)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	h := animals(t)
	wantAnc := []string{"AmazingFlyingPenguin", "Animal", "Bird", "GalapagosPenguin", "Penguin"}
	if got := h.Ancestors("Patricia"); !reflect.DeepEqual(got, wantAnc) {
		t.Fatalf("Ancestors(Patricia) = %v, want %v", got, wantAnc)
	}
	wantDesc := []string{"AmazingFlyingPenguin", "GalapagosPenguin", "Pamela", "Patricia", "Paul", "Peter"}
	if got := h.Descendants("Penguin"); !reflect.DeepEqual(got, wantDesc) {
		t.Fatalf("Descendants(Penguin) = %v, want %v", got, wantDesc)
	}
}

func TestOverlaps(t *testing.T) {
	h := animals(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"Bird", "Penguin", true},                          // comparable
		{"GalapagosPenguin", "AmazingFlyingPenguin", true}, // Patricia
		{"Canary", "Penguin", false},                       // disjoint
		{"Canary", "GalapagosPenguin", false},              // disjoint
		{"Tweety", "Tweety", true},                         // equal
	}
	for _, c := range cases {
		if got := h.Overlaps(c.a, c.b); got != c.want {
			t.Errorf("Overlaps(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMeets(t *testing.T) {
	h := animals(t)
	// comparable: the more specific
	if got := h.Meets("Bird", "Penguin"); !reflect.DeepEqual(got, []string{"Penguin"}) {
		t.Fatalf("Meets(Bird,Penguin) = %v", got)
	}
	if got := h.Meets("Penguin", "Bird"); !reflect.DeepEqual(got, []string{"Penguin"}) {
		t.Fatalf("Meets(Penguin,Bird) = %v", got)
	}
	// incomparable with common members: Patricia is the only common node
	got := h.Meets("GalapagosPenguin", "AmazingFlyingPenguin")
	if !reflect.DeepEqual(got, []string{"Patricia"}) {
		t.Fatalf("Meets(GP,AFP) = %v, want [Patricia]", got)
	}
	// disjoint
	if got := h.Meets("Canary", "Penguin"); got != nil {
		t.Fatalf("Meets(Canary,Penguin) = %v, want nil", got)
	}
}

// TestMeetsMaximality: meets must be maximal — with an intersection class
// above shared instances, the class (not the instances) is the meet.
func TestMeetsMaximality(t *testing.T) {
	h := New("D")
	for _, c := range []string{"A", "B"} {
		if err := h.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddClass("AB", "A", "B"); err != nil {
		t.Fatal(err)
	}
	for _, i := range []string{"x", "y"} {
		if err := h.AddInstance(i, "AB"); err != nil {
			t.Fatal(err)
		}
	}
	if got := h.Meets("A", "B"); !reflect.DeepEqual(got, []string{"AB"}) {
		t.Fatalf("Meets(A,B) = %v, want [AB]", got)
	}
}

func TestIrredundantAndStrip(t *testing.T) {
	h := animals(t)
	if !h.Irredundant() {
		t.Fatal("fresh hierarchy should be irredundant")
	}
	// Appendix example: a redundant link stating Pamela is a Penguin.
	if err := h.AddEdge("Penguin", "Pamela"); err != nil {
		t.Fatal(err)
	}
	if h.Irredundant() {
		t.Fatal("hierarchy with Penguin→Pamela should be redundant")
	}
	want := [][2]string{{"Penguin", "Pamela"}}
	if got := h.RedundantEdges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RedundantEdges = %v, want %v", got, want)
	}
	if err := h.StripRedundant(); err != nil {
		t.Fatal(err)
	}
	if !h.Irredundant() {
		t.Fatal("StripRedundant did not restore irredundancy")
	}
	if !h.Subsumes("Penguin", "Pamela") {
		t.Fatal("StripRedundant changed membership")
	}
}

func TestPrefer(t *testing.T) {
	h := New("D")
	for _, c := range []string{"A", "B"} {
		if err := h.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Prefer("A", "B"); err != nil {
		t.Fatal(err)
	}
	// Binding subsumption now sees B above A…
	if !h.BindSubsumes("B", "A") {
		t.Fatal("preference edge not visible to BindSubsumes")
	}
	// …but membership is unchanged.
	if h.Subsumes("B", "A") || h.Subsumes("A", "B") {
		t.Fatal("preference edge leaked into membership")
	}
	// The reverse preference would now create a binding cycle.
	if err := h.Prefer("B", "A"); !errors.Is(err, ErrCycle) {
		t.Fatalf("got %v, want ErrCycle", err)
	}
	want := [][2]string{{"A", "B"}}
	if got := h.Preferences(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Preferences = %v, want %v", got, want)
	}
}

func TestPreferUnknown(t *testing.T) {
	h := New("D")
	if err := h.Prefer("x", "D"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v, want ErrUnknown", err)
	}
	if err := h.Prefer("D", "x"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v, want ErrUnknown", err)
	}
}

func TestTopoIndexRespectsSpecificity(t *testing.T) {
	h := animals(t)
	idx := h.TopoIndex()
	pairs := [][2]string{
		{"Animal", "Bird"},
		{"Bird", "Penguin"},
		{"Penguin", "Patricia"},
		{"AmazingFlyingPenguin", "Peter"},
	}
	for _, p := range pairs {
		if idx[p[0]] >= idx[p[1]] {
			t.Errorf("TopoIndex: %q (%d) should precede %q (%d)", p[0], idx[p[0]], p[1], idx[p[1]])
		}
	}
}

func TestNodesSorted(t *testing.T) {
	h := animals(t)
	nodes := h.Nodes()
	if len(nodes) != 11 {
		t.Fatalf("len(Nodes) = %d, want 11", len(nodes))
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes not sorted at %d: %v", i, nodes)
		}
	}
}

func TestDOTStable(t *testing.T) {
	h := animals(t)
	if h.DOT() != h.DOT() {
		t.Fatal("DOT not deterministic")
	}
}

func TestMustIDAndNameOfRoundTrip(t *testing.T) {
	h := animals(t)
	for _, n := range h.Nodes() {
		if got := h.NameOf(h.MustID(n)); got != n {
			t.Fatalf("round trip %q → %q", n, got)
		}
	}
}

func TestMustIDPanics(t *testing.T) {
	h := New("D")
	defer func() {
		if recover() == nil {
			t.Fatal("MustID on unknown name did not panic")
		}
	}()
	h.MustID("nope")
}

// TestSubsumptionPartialOrderProperty checks that Subsumes is a partial
// order (reflexive, antisymmetric, transitive) on random hierarchies.
func TestSubsumptionPartialOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		h := randomHierarchy(rng, 12)
		nodes := h.Nodes()
		for _, a := range nodes {
			if !h.Subsumes(a, a) {
				t.Fatal("not reflexive")
			}
		}
		for _, a := range nodes {
			for _, b := range nodes {
				if a != b && h.Subsumes(a, b) && h.Subsumes(b, a) {
					t.Fatalf("antisymmetry violated: %q, %q", a, b)
				}
				for _, c := range nodes {
					if h.Subsumes(a, b) && h.Subsumes(b, c) && !h.Subsumes(a, c) {
						t.Fatalf("transitivity violated: %q %q %q", a, b, c)
					}
				}
			}
		}
	}
}

// TestMeetsSoundCompleteProperty checks on random hierarchies that Meets
// returns exactly the maximal common descendants.
func TestMeetsSoundCompleteProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		h := randomHierarchy(rng, 10)
		nodes := h.Nodes()
		a := nodes[rng.Intn(len(nodes))]
		b := nodes[rng.Intn(len(nodes))]
		meets := h.Meets(a, b)
		inMeets := map[string]bool{}
		for _, m := range meets {
			inMeets[m] = true
			if !h.Subsumes(a, m) || !h.Subsumes(b, m) {
				t.Fatalf("meet %q not common under %q,%q", m, a, b)
			}
		}
		// every common descendant must be subsumed by some meet
		for _, x := range nodes {
			if h.Subsumes(a, x) && h.Subsumes(b, x) {
				covered := false
				for _, m := range meets {
					if h.Subsumes(m, x) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("common node %q of (%q,%q) not covered by meets %v", x, a, b, meets)
				}
			}
		}
		// meets are mutually incomparable
		for _, m1 := range meets {
			for _, m2 := range meets {
				if m1 != m2 && h.Subsumes(m1, m2) {
					t.Fatalf("meets not maximal: %q subsumes %q", m1, m2)
				}
			}
		}
	}
}

// randomHierarchy builds a random DAG hierarchy with n extra nodes.
func randomHierarchy(rng *rand.Rand, n int) *Hierarchy {
	h := New("root")
	names := []string{"root"}
	for i := 0; i < n; i++ {
		name := string(rune('a' + i))
		// pick 1-2 random existing parents
		p1 := names[rng.Intn(len(names))]
		parents := []string{p1}
		if rng.Intn(3) == 0 {
			p2 := names[rng.Intn(len(names))]
			if p2 != p1 {
				parents = append(parents, p2)
			}
		}
		if err := h.AddClass(name, parents...); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	return h
}
