// Package hierarchy implements the per-domain class hierarchies of
// Jagadish's hierarchical relational model (SIGMOD '89, §2.1).
//
// A Hierarchy is a rooted directed acyclic graph. The root is the domain
// itself; internal nodes are classes; instances are leaves (we follow the
// paper in treating an instance as a singleton class when convenient).
// Membership is transitive: x ∈ C iff there is a directed path C → x.
//
// Two kinds of edges exist:
//
//   - is-a edges, which denote set inclusion and define membership; and
//   - preference edges (appendix of the paper), which do NOT denote set
//     inclusion but participate in tuple binding, letting one class's
//     assertions preempt another's.
//
// The paper's default (off-path) preemption semantics assume the is-a graph
// is irredundant (a transitive reduction). Redundant edges are nevertheless
// meaningful in the model — they weaken preemption — so AddEdge permits them
// and Irredundant/StripRedundant let callers enforce the default.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hrdb/internal/dag"
)

// Sentinel errors reported by hierarchy operations.
var (
	// ErrDuplicate indicates that a node with the given name already exists.
	ErrDuplicate = errors.New("hierarchy: duplicate node name")
	// ErrUnknown indicates that a referenced node does not exist.
	ErrUnknown = errors.New("hierarchy: unknown node")
	// ErrCycle indicates that an edge would create a cycle (the paper's
	// type-irredundancy constraint, §3.1).
	ErrCycle = errors.New("hierarchy: edge would create a cycle")
	// ErrInstanceParent indicates an attempt to give children to an
	// instance (instances are leaves).
	ErrInstanceParent = errors.New("hierarchy: instances cannot have children")
	// ErrEmptyName indicates a node with an empty name.
	ErrEmptyName = errors.New("hierarchy: empty node name")
)

// Hierarchy is a named, rooted DAG of classes and instances. The zero value
// is not usable; call New.
//
// A hierarchy that is not being mutated is safe for concurrent readers: the
// lazily built derived structures (the binding graph and its irredundancy
// flag) are published atomically and built under a mutex. Mutation is
// single-writer with no concurrent readers, as with the dag package.
type Hierarchy struct {
	domain   string
	isa      *dag.Graph
	ids      map[string]int
	names    []string
	instance []bool
	root     int
	prefs    [][2]int // preference edges: weaker → stronger (binding only)

	// gen counts mutations; the core package folds it into verdict-cache
	// stamps so cached evaluations are fenced against hierarchy edits.
	gen atomic.Uint64

	// bindMu serializes lazy builds of the derived state below.
	bindMu sync.Mutex
	// bind is the is-a graph plus preference edges, built lazily.
	bind atomic.Pointer[dag.Graph]
	// bindIrr caches BindingIrredundant: 0 unknown, 1 true, -1 false.
	bindIrr atomic.Int32
}

// invalidate drops the lazily derived state and bumps the mutation
// generation; called by every mutating operation.
func (h *Hierarchy) invalidate() {
	h.bind.Store(nil)
	h.bindIrr.Store(0)
	h.gen.Add(1)
}

// Generation returns a counter incremented by every mutation of the
// hierarchy (nodes, edges, preferences). Callers that memoize results
// derived from the hierarchy can use it as a cheap validity fence.
func (h *Hierarchy) Generation() uint64 { return h.gen.Load() }

// Warm eagerly builds the lazily derived structures — the binding graph,
// the reachability indexes of both graphs, and the irredundancy flag — so
// that a following fan-out of concurrent readers shares them instead of
// duplicating the work. No-op when already warm.
func (h *Hierarchy) Warm() {
	h.isa.Warm()
	h.bindGraph().Warm()
	h.BindingIrredundant()
}

// IndexWarm reports whether the is-a graph's O(1) subsumption index (the
// dag interval-label index) is currently built, i.e. whether Subsumes is a
// pair of label compares rather than a graph walk. The query planner uses
// this as its label-index-warmth cost signal.
func (h *Hierarchy) IndexWarm() bool { return h.isa.LabelsWarm() }

// New creates a hierarchy whose root class is the domain itself.
func New(domain string) *Hierarchy {
	h := &Hierarchy{
		domain: domain,
		isa:    dag.New(),
		ids:    map[string]int{},
	}
	h.root = h.isa.AddNode()
	h.ids[domain] = h.root
	h.names = append(h.names, domain)
	h.instance = append(h.instance, false)
	return h
}

// Domain returns the domain (root class) name.
func (h *Hierarchy) Domain() string { return h.domain }

// Has reports whether name is a node of the hierarchy.
func (h *Hierarchy) Has(name string) bool {
	_, ok := h.ids[name]
	return ok
}

// IsInstance reports whether name is an instance (leaf by construction).
func (h *Hierarchy) IsInstance(name string) bool {
	id, ok := h.ids[name]
	return ok && h.instance[id]
}

// Len returns the number of nodes, including the root.
func (h *Hierarchy) Len() int { return h.isa.Len() }

// Nodes returns all node names, sorted.
func (h *Hierarchy) Nodes() []string {
	out := make([]string, 0, len(h.ids))
	for name := range h.ids {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// addNode inserts a node under the given parents (default: the root).
func (h *Hierarchy) addNode(name string, isInstance bool, parents []string) error {
	if name == "" {
		return ErrEmptyName
	}
	if _, ok := h.ids[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	pids := make([]int, 0, len(parents))
	if len(parents) == 0 {
		pids = append(pids, h.root)
	}
	for _, p := range parents {
		pid, ok := h.ids[p]
		if !ok {
			return fmt.Errorf("%w: parent %q", ErrUnknown, p)
		}
		if h.instance[pid] {
			return fmt.Errorf("%w: parent %q", ErrInstanceParent, p)
		}
		pids = append(pids, pid)
	}
	id := h.isa.AddNode()
	h.ids[name] = id
	h.names = append(h.names, name)
	h.instance = append(h.instance, isInstance)
	for _, pid := range pids {
		if err := h.isa.AddEdge(pid, id); err != nil {
			// Cannot happen: the new node has no outgoing edges.
			return err
		}
	}
	h.invalidate()
	return nil
}

// AddClass creates a class under the given parent classes. With no parents
// the class is placed directly under the domain root.
func (h *Hierarchy) AddClass(name string, parents ...string) error {
	return h.addNode(name, false, parents)
}

// AddInstance creates an instance (leaf) under the given parent classes.
// With no parents the instance is placed directly under the domain root.
func (h *Hierarchy) AddInstance(name string, parents ...string) error {
	return h.addNode(name, true, parents)
}

// AddEdge records that child is additionally a member/subclass of parent
// (multiple inheritance). Redundant edges are permitted — they are
// semantically meaningful under the paper's preemption rules — but can be
// detected with Irredundant and removed with StripRedundant.
func (h *Hierarchy) AddEdge(parent, child string) error {
	pid, ok := h.ids[parent]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, parent)
	}
	cid, ok := h.ids[child]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, child)
	}
	if h.instance[pid] {
		return fmt.Errorf("%w: parent %q", ErrInstanceParent, parent)
	}
	// The edge must keep the binding graph acyclic too: a preference edge
	// installed earlier may already make parent reachable from child there,
	// and a later rebuild of the binding graph must never hit a cycle.
	if len(h.prefs) > 0 && h.bindGraph().HasPath(cid, pid) {
		return fmt.Errorf("%w: %q → %q (via preference edges)", ErrCycle, parent, child)
	}
	if err := h.isa.AddEdge(pid, cid); err != nil {
		if errors.Is(err, dag.ErrCycle) {
			return fmt.Errorf("%w: %q → %q", ErrCycle, parent, child)
		}
		return err
	}
	h.invalidate()
	return nil
}

// Prefer installs a preference edge making assertions on stronger preempt
// assertions on weaker wherever both apply (paper appendix). The edge is
// used only for tuple binding, never for membership. It must not create a
// cycle in the binding graph.
func (h *Hierarchy) Prefer(stronger, weaker string) error {
	sid, ok := h.ids[stronger]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, stronger)
	}
	wid, ok := h.ids[weaker]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, weaker)
	}
	bg := h.bindGraph()
	// Binding edges run general → specific, so "weaker → stronger" makes
	// the stronger node reachable from the weaker one.
	if err := bg.AddEdge(wid, sid); err != nil {
		if errors.Is(err, dag.ErrCycle) {
			return fmt.Errorf("%w: preference %q over %q", ErrCycle, stronger, weaker)
		}
		return err
	}
	h.prefs = append(h.prefs, [2]int{wid, sid})
	// Force a rebuild so the preference-induced transitive reduction runs.
	h.invalidate()
	return nil
}

// Preferences returns the preference edges as (stronger, weaker) name pairs
// in insertion order.
func (h *Hierarchy) Preferences() [][2]string {
	out := make([][2]string, 0, len(h.prefs))
	for _, p := range h.prefs {
		out = append(out, [2]string{h.names[p[1]], h.names[p[0]]})
	}
	return out
}

// bindGraph returns the is-a graph plus preference edges (lazily built).
//
// The paper's appendix says that after preference edges are introduced "the
// semantics of off-path preemption apply", and off-path preemption requires
// an irredundant graph. So any is-a edge that a preference edge makes
// transitively redundant is dropped from the binding graph — this is
// exactly what lets the preferred class preempt the dispreferred one.
// Is-a edges that were already redundant before preferences are kept: the
// appendix treats deliberately redundant links as meaningful (they weaken
// preemption), and membership is never affected either way.
func (h *Hierarchy) bindGraph() *dag.Graph {
	if bg := h.bind.Load(); bg != nil {
		return bg
	}
	h.bindMu.Lock()
	defer h.bindMu.Unlock()
	if bg := h.bind.Load(); bg != nil {
		return bg
	}
	bg := h.isa.Clone()
	if len(h.prefs) > 0 {
		for _, p := range h.prefs {
			if err := bg.AddEdge(p[0], p[1]); err != nil {
				// Preference edges were validated when installed.
				panic(err)
			}
		}
		for _, e := range h.isa.Edges() {
			if bg.IsRedundantEdge(e[0], e[1]) && !h.isa.IsRedundantEdge(e[0], e[1]) {
				bg.RemoveEdge(e[0], e[1])
			}
		}
	}
	h.bind.Store(bg)
	return bg
}

// BindChildren returns the direct successors of name in the binding graph
// (is-a children plus nodes this one is dispreferred to), sorted.
func (h *Hierarchy) BindChildren(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.bindGraph().Succ(id))
}

// BindParents returns the direct predecessors of name in the binding graph,
// sorted.
func (h *Hierarchy) BindParents(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.bindGraph().Pred(id))
}

// BindReachSet returns the set of node ids reachable from name in the
// binding graph (including name itself), for bulk subsumption checks. The
// returned bitset must not be modified and is invalidated by mutation.
func (h *Hierarchy) BindReachSet(name string) (dag.Bitset, bool) {
	id, ok := h.ids[name]
	if !ok {
		return nil, false
	}
	set, err := h.bindGraph().ReachableSet(id)
	if err != nil {
		return nil, false
	}
	return set, true
}

// BindingIrredundant reports whether the binding graph (is-a plus preference
// edges) is a transitive reduction. When true, the fast minimal-applicable
// evaluation path of the core package coincides with the paper's tuple-
// binding-graph construction. The result is cached until the next mutation.
func (h *Hierarchy) BindingIrredundant() bool {
	if v := h.bindIrr.Load(); v != 0 {
		return v > 0
	}
	bg := h.bindGraph()
	irr := true
	for _, e := range bg.Edges() {
		if bg.IsRedundantEdge(e[0], e[1]) {
			irr = false
			break
		}
	}
	// Concurrent callers may race to store the same value; that is benign
	// because the computation is a pure read of the (stable) binding graph.
	if irr {
		h.bindIrr.Store(1)
	} else {
		h.bindIrr.Store(-1)
	}
	return irr
}

// id returns the node id for name.
func (h *Hierarchy) id(name string) (int, error) {
	id, ok := h.ids[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return id, nil
}

// MustID is like id but panics on unknown names; used by trusted internal
// callers that have already validated the name.
func (h *Hierarchy) MustID(name string) int {
	id, ok := h.ids[name]
	if !ok {
		panic(fmt.Sprintf("hierarchy: unknown node %q", name))
	}
	return id
}

// NameOf returns the name of a node id (inverse of MustID). Ids that do not
// name a live node — negative, never allocated, or removed — return "",
// matching the "unknown names never subsume" convention used elsewhere.
func (h *Hierarchy) NameOf(id int) string {
	if id < 0 || id >= len(h.names) || !h.isa.Has(id) {
		return ""
	}
	return h.names[id]
}

// Subsumes reports whether ancestor subsumes descendant: they are equal or
// there is a directed is-a path ancestor → descendant. Unknown names never
// subsume anything.
func (h *Hierarchy) Subsumes(ancestor, descendant string) bool {
	aid, ok := h.ids[ancestor]
	if !ok {
		return false
	}
	did, ok := h.ids[descendant]
	if !ok {
		return false
	}
	return h.isa.HasPath(aid, did)
}

// StrictlySubsumes reports ancestor ⊐ descendant (subsumes and not equal).
func (h *Hierarchy) StrictlySubsumes(ancestor, descendant string) bool {
	return ancestor != descendant && h.Subsumes(ancestor, descendant)
}

// BindSubsumes is Subsumes computed over the binding graph (is-a plus
// preference edges). Used for tuple binding, never for membership.
func (h *Hierarchy) BindSubsumes(ancestor, descendant string) bool {
	aid, ok := h.ids[ancestor]
	if !ok {
		return false
	}
	did, ok := h.ids[descendant]
	if !ok {
		return false
	}
	return h.bindGraph().HasPath(aid, did)
}

// Parents returns the direct is-a parents of name, sorted.
func (h *Hierarchy) Parents(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.isa.Pred(id))
}

// Children returns the direct is-a children of name, sorted.
func (h *Hierarchy) Children(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.isa.Succ(id))
}

// Ancestors returns every strict ancestor of name, sorted.
func (h *Hierarchy) Ancestors(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.isa.Ancestors(id))
}

// Descendants returns every strict descendant of name, sorted.
func (h *Hierarchy) Descendants(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	return h.namesOf(h.isa.Descendants(id))
}

// Leaves returns the leaf nodes subsumed by name (name itself if it is a
// leaf), sorted. These are the atomic elements the class expands to under
// explication (§3.3.2).
func (h *Hierarchy) Leaves(name string) []string {
	id, err := h.id(name)
	if err != nil {
		return nil
	}
	var out []string
	if len(h.isa.Succ(id)) == 0 {
		out = append(out, h.names[id])
	}
	for _, d := range h.isa.Descendants(id) {
		if len(h.isa.Succ(d)) == 0 {
			out = append(out, h.names[d])
		}
	}
	sort.Strings(out)
	return out
}

// AllLeaves returns every leaf of the hierarchy, sorted.
func (h *Hierarchy) AllLeaves() []string { return h.Leaves(h.domain) }

// IsLeaf reports whether name has no is-a children.
func (h *Hierarchy) IsLeaf(name string) bool {
	id, err := h.id(name)
	if err != nil {
		return false
	}
	return len(h.isa.Succ(id)) == 0
}

// Overlaps reports whether the classes a and b can share members: one
// subsumes the other, or they have a common descendant. This is the
// "optimistic" overlap evidence of §3.1 — two classes are assumed disjoint
// unless the hierarchy proves otherwise.
func (h *Hierarchy) Overlaps(a, b string) bool {
	if h.Subsumes(a, b) || h.Subsumes(b, a) {
		return true
	}
	return len(h.commonDescendantIDs(a, b)) > 0
}

// commonDescendantIDs returns ids of nodes subsumed by both a and b
// (excluding the case where one subsumes the other, which callers handle).
func (h *Hierarchy) commonDescendantIDs(a, b string) []int {
	aid, ok := h.ids[a]
	if !ok {
		return nil
	}
	bid, ok := h.ids[b]
	if !ok {
		return nil
	}
	ra, err := h.isa.ReachableSet(aid)
	if err != nil {
		return nil
	}
	rb, err := h.isa.ReachableSet(bid)
	if err != nil {
		return nil
	}
	var out []int
	for _, n := range ra.Members() {
		if rb.Get(n) {
			out = append(out, n)
		}
	}
	return out
}

// Meets returns the maximal common descendants of a and b: if one subsumes
// the other the result is the more specific of the two; otherwise it is the
// set of nodes subsumed by both and subsumed by no other such node. This is
// the per-attribute building block of the paper's complete/minimal conflict
// resolution sets (§3.1). The result is empty iff a and b do not overlap.
func (h *Hierarchy) Meets(a, b string) []string {
	if h.Subsumes(a, b) {
		return []string{b}
	}
	if h.Subsumes(b, a) {
		return []string{a}
	}
	common := h.commonDescendantIDs(a, b)
	if len(common) == 0 {
		return nil
	}
	inCommon := make(map[int]bool, len(common))
	for _, c := range common {
		inCommon[c] = true
	}
	var out []string
	for _, c := range common {
		maximal := true
		for _, p := range h.isa.Ancestors(c) {
			if inCommon[p] {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, h.names[c])
		}
	}
	sort.Strings(out)
	return out
}

// Irredundant reports whether the is-a graph is a transitive reduction
// (the precondition for the paper's off-path preemption semantics).
func (h *Hierarchy) Irredundant() bool {
	for _, e := range h.isa.Edges() {
		if h.isa.IsRedundantEdge(e[0], e[1]) {
			return false
		}
	}
	return true
}

// RedundantEdges returns the transitively redundant is-a edges as
// (parent, child) name pairs, deterministic order.
func (h *Hierarchy) RedundantEdges() [][2]string {
	var out [][2]string
	for _, e := range h.isa.Edges() {
		if h.isa.IsRedundantEdge(e[0], e[1]) {
			out = append(out, [2]string{h.names[e[0]], h.names[e[1]]})
		}
	}
	return out
}

// StripRedundant removes all transitively redundant is-a edges, restoring
// the transitive reduction the paper's default semantics assume.
func (h *Hierarchy) StripRedundant() error {
	if err := h.isa.TransitiveReduction(); err != nil {
		return err
	}
	h.invalidate()
	return nil
}

// ErrHasChildren indicates an attempt to remove a node that still has
// children.
var ErrHasChildren = errors.New("hierarchy: node still has children")

// ErrIsRoot indicates an attempt to remove the domain root.
var ErrIsRoot = errors.New("hierarchy: cannot remove the domain root")

// RemoveLeaf removes a childless node (class or instance) together with
// its incoming edges and any preference edges touching it. Nodes with
// children must be emptied first; the root cannot be removed. The caller
// (the catalog layer) is responsible for checking that no relation tuple
// references the node.
func (h *Hierarchy) RemoveLeaf(name string) error {
	id, ok := h.ids[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	if id == h.root {
		return fmt.Errorf("%w: %q", ErrIsRoot, name)
	}
	if len(h.isa.Succ(id)) > 0 {
		return fmt.Errorf("%w: %q", ErrHasChildren, name)
	}
	h.isa.RemoveNode(id)
	delete(h.ids, name)
	// Drop preference edges touching the node.
	kept := h.prefs[:0]
	for _, p := range h.prefs {
		if p[0] != id && p[1] != id {
			kept = append(kept, p)
		}
	}
	h.prefs = kept
	h.invalidate()
	return nil
}

// TopoIndex returns a map from node name to its position in a deterministic
// topological order of the binding graph (general classes first). Items can
// be sorted most-specific-last using these indices.
func (h *Hierarchy) TopoIndex() map[string]int {
	order, err := h.bindGraph().Topo()
	if err != nil {
		// The binding graph is acyclic by construction.
		panic(err)
	}
	out := make(map[string]int, len(order))
	for i, id := range order {
		out[h.names[id]] = i
	}
	return out
}

// Graph returns a clone of the is-a graph together with the id→name mapping,
// for callers (such as the explicit product-graph construction in tests and
// the on-path evaluator) that need raw graph access.
func (h *Hierarchy) Graph() (*dag.Graph, func(int) string) {
	return h.isa.Clone(), func(id int) string { return h.names[id] }
}

// BindingGraphClone returns a clone of the binding graph (is-a plus
// preference edges) with the id→name mapping.
func (h *Hierarchy) BindingGraphClone() (*dag.Graph, func(int) string) {
	return h.bindGraph().Clone(), func(id int) string { return h.names[id] }
}

// DOT renders the is-a graph in Graphviz syntax.
func (h *Hierarchy) DOT() string {
	return h.isa.DOT(h.domain, func(id int) string { return h.names[id] })
}

func (h *Hierarchy) namesOf(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = h.names[id]
	}
	sort.Strings(out)
	return out
}
