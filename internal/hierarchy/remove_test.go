package hierarchy

import (
	"errors"
	"testing"
)

func TestRemoveLeafDirect(t *testing.T) {
	h := animals(t)
	if err := h.RemoveLeaf("Tweety"); err != nil {
		t.Fatal(err)
	}
	if h.Has("Tweety") {
		t.Fatal("Tweety survived")
	}
	// Canary is now childless: removable as well.
	if err := h.RemoveLeaf("Canary"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("Bird"); !errors.Is(err, ErrHasChildren) {
		t.Fatalf("got %v", err)
	}
	if err := h.RemoveLeaf("Animal"); !errors.Is(err, ErrIsRoot) {
		t.Fatalf("got %v", err)
	}
	if err := h.RemoveLeaf("Ghost"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("got %v", err)
	}
	// Membership and binding still coherent after removals.
	if !h.Subsumes("Penguin", "Patricia") {
		t.Fatal("membership broken")
	}
	if !h.BindingIrredundant() {
		t.Fatal("binding graph broken")
	}
}

func TestRemoveLeafDropsPreference(t *testing.T) {
	h := animals(t)
	if err := h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"); err != nil {
		t.Fatal(err)
	}
	// Remove every AFP instance, then AFP itself: the preference must go.
	for _, n := range []string{"Pamela", "Peter"} {
		if err := h.RemoveLeaf(n); err != nil {
			t.Fatal(err)
		}
	}
	// Patricia has two parents; removing her leaves AFP childless.
	if err := h.RemoveLeaf("Patricia"); err != nil {
		t.Fatal(err)
	}
	if err := h.RemoveLeaf("AmazingFlyingPenguin"); err != nil {
		t.Fatal(err)
	}
	if len(h.Preferences()) != 0 {
		t.Fatalf("preferences = %v", h.Preferences())
	}
}
