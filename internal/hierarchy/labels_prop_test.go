package hierarchy

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestNameOfUnknownIDs(t *testing.T) {
	h := New("D")
	if err := h.AddClass("c"); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInstance("gone", "c"); err != nil {
		t.Fatal(err)
	}
	stale := h.MustID("gone")
	if err := h.RemoveLeaf("gone"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		id   int
		want string
	}{
		{"root", h.MustID("D"), "D"},
		{"class", h.MustID("c"), "c"},
		{"negative", -1, ""},
		{"very negative", -99, ""},
		{"stale (removed leaf)", stale, ""},
		{"just past end", stale + 1, ""},
		{"far past end", 1 << 20, ""},
	}
	for _, tc := range cases {
		if got := h.NameOf(tc.id); got != tc.want {
			t.Errorf("%s: NameOf(%d) = %q, want %q", tc.name, tc.id, got, tc.want)
		}
	}
}

// refSubsumes recomputes subsumption by BFS over the given children
// function, independent of the dag package's reachability machinery.
func refSubsumes(h *Hierarchy, children func(string) []string, a, b string) bool {
	if !h.Has(a) || !h.Has(b) {
		return false
	}
	if a == b {
		return true
	}
	seen := map[string]bool{a: true}
	queue := []string{a}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range children(n) {
			if c == b {
				return true
			}
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	return false
}

// TestLabelIndexMatchesDFSProperty interleaves every mutating operation with
// warm-ups and checks that Subsumes/BindSubsumes — answered by the interval-
// label index when warm, by DFS when cold — always agree with an independent
// BFS over the name-level adjacency.
func TestLabelIndexMatchesDFSProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1989))
	for trial := 0; trial < 6; trial++ {
		h := New(fmt.Sprintf("D%d", trial))
		names := []string{h.Domain()}
		classes := []string{h.Domain()}
		pick := func(pool []string) string { return pool[rng.Intn(len(pool))] }

		check := func(step int) {
			t.Helper()
			for q := 0; q < 250; q++ {
				a, b := pick(names), pick(names)
				if got, want := h.Subsumes(a, b), refSubsumes(h, h.Children, a, b); got != want {
					t.Fatalf("trial %d step %d: Subsumes(%q,%q) = %v, want %v (warm=%v)",
						trial, step, a, b, got, want, h.IndexWarm())
				}
				if got, want := h.BindSubsumes(a, b), refSubsumes(h, h.BindChildren, a, b); got != want {
					t.Fatalf("trial %d step %d: BindSubsumes(%q,%q) = %v, want %v",
						trial, step, a, b, got, want)
				}
			}
		}

		for step := 0; step < 140; step++ {
			switch op := rng.Intn(12); {
			case op < 3 && len(classes) < 50:
				name := fmt.Sprintf("c%03d", step)
				parents := []string{pick(classes)}
				if rng.Intn(3) == 0 {
					if p2 := pick(classes); p2 != parents[0] {
						parents = append(parents, p2)
					}
				}
				if err := h.AddClass(name, parents...); err == nil {
					names = append(names, name)
					classes = append(classes, name)
				}
			case op < 6:
				name := fmt.Sprintf("i%03d", step)
				if err := h.AddInstance(name, pick(classes)); err == nil {
					names = append(names, name)
				}
			case op < 8:
				// May be rejected (cycle, instance parent, duplicate): the
				// point is that accepted edges are indexed correctly.
				_ = h.AddEdge(pick(classes), pick(names))
			case op < 9:
				_ = h.Prefer(pick(names), pick(names))
			case op < 10:
				_ = h.RemoveLeaf(pick(names))
			default:
				h.Warm()
				if !h.IndexWarm() {
					t.Fatalf("trial %d step %d: Warm left the label index cold", trial, step)
				}
			}
			if step%35 == 34 {
				check(step)
			}
		}
		// Final pass both cold (post-mutation) and warm.
		check(-1)
		h.Warm()
		check(-2)
	}
}

// TestAddEdgeRejectsBindingCycle pins a bug the property test found: an
// is-a edge that is acyclic in the is-a graph could still close a cycle
// through an earlier preference edge, and the next binding-graph rebuild
// panicked. AddEdge must reject it up front.
func TestAddEdgeRejectsBindingCycle(t *testing.T) {
	h := New("D")
	for _, c := range []string{"a", "b"} {
		if err := h.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	// Binding edge a → b (b preempts a).
	if err := h.Prefer("b", "a"); err != nil {
		t.Fatal(err)
	}
	// is-a edge b → a would close the cycle in the binding graph.
	if err := h.AddEdge("b", "a"); !errors.Is(err, ErrCycle) {
		t.Fatalf("AddEdge(b,a) = %v, want ErrCycle", err)
	}
	// The hierarchy must remain fully usable (no poisoned rebuild).
	h.Warm()
	if !h.BindSubsumes("a", "b") {
		t.Fatal("preference edge lost")
	}
	if h.Subsumes("b", "a") {
		t.Fatal("rejected is-a edge took effect")
	}
}

// TestSubsumesWarmNoAllocs pins the tentpole's O(1) claim at the hierarchy
// level: a warm Subsumes is two map lookups plus a label compare.
func TestSubsumesWarmNoAllocs(t *testing.T) {
	h := New("D")
	for c := 0; c < 20; c++ {
		if err := h.AddClass(fmt.Sprintf("c%02d", c)); err != nil {
			t.Fatal(err)
		}
		if err := h.AddInstance(fmt.Sprintf("i%02d", c), fmt.Sprintf("c%02d", c)); err != nil {
			t.Fatal(err)
		}
	}
	h.Warm()
	if avg := testing.AllocsPerRun(200, func() {
		h.Subsumes("c03", "i03")
		h.Subsumes("c03", "i07")
		h.BindSubsumes("D", "i19")
	}); avg != 0 {
		t.Fatalf("warm Subsumes allocates %.1f per run, want 0", avg)
	}
}
