package hierarchy

import (
	"reflect"
	"testing"
)

func TestIsInstanceAndIsLeaf(t *testing.T) {
	h := animals(t)
	if !h.IsInstance("Tweety") || h.IsInstance("Bird") || h.IsInstance("nope") {
		t.Fatal("IsInstance wrong")
	}
	if !h.IsLeaf("Tweety") || h.IsLeaf("Bird") || h.IsLeaf("nope") {
		t.Fatal("IsLeaf wrong")
	}
	// A childless class is a leaf but not an instance.
	if err := h.AddClass("EmptyClass"); err != nil {
		t.Fatal(err)
	}
	if !h.IsLeaf("EmptyClass") || h.IsInstance("EmptyClass") {
		t.Fatal("childless class should be a non-instance leaf")
	}
}

func TestChildren(t *testing.T) {
	h := animals(t)
	want := []string{"AmazingFlyingPenguin", "GalapagosPenguin"}
	if got := h.Children("Penguin"); !reflect.DeepEqual(got, want) {
		t.Fatalf("Children(Penguin) = %v", got)
	}
	if got := h.Children("Tweety"); len(got) != 0 {
		t.Fatalf("Children(Tweety) = %v", got)
	}
	if got := h.Children("nope"); got != nil {
		t.Fatalf("Children(nope) = %v", got)
	}
}

func TestBindChildrenAndParents(t *testing.T) {
	h := animals(t)
	// Without preferences the binding graph equals the is-a graph.
	if got := h.BindChildren("Penguin"); !reflect.DeepEqual(got, h.Children("Penguin")) {
		t.Fatalf("BindChildren = %v", got)
	}
	if got := h.BindParents("Patricia"); !reflect.DeepEqual(got, h.Parents("Patricia")) {
		t.Fatalf("BindParents = %v", got)
	}
	// A preference edge appears in the binding adjacency only.
	if err := h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range h.BindChildren("GalapagosPenguin") {
		if c == "AmazingFlyingPenguin" {
			found = true
		}
	}
	if !found {
		t.Fatalf("preference edge missing from BindChildren: %v", h.BindChildren("GalapagosPenguin"))
	}
	for _, c := range h.Children("GalapagosPenguin") {
		if c == "AmazingFlyingPenguin" {
			t.Fatal("preference edge leaked into is-a Children")
		}
	}
	if got := h.BindChildren("nope"); got != nil {
		t.Fatalf("BindChildren(nope) = %v", got)
	}
	if got := h.BindParents("nope"); got != nil {
		t.Fatalf("BindParents(nope) = %v", got)
	}
}

func TestBindReachSet(t *testing.T) {
	h := animals(t)
	set, ok := h.BindReachSet("Penguin")
	if !ok {
		t.Fatal("BindReachSet failed")
	}
	if !set.Get(h.MustID("Patricia")) {
		t.Fatal("Patricia not reachable from Penguin")
	}
	if set.Get(h.MustID("Canary")) {
		t.Fatal("Canary reachable from Penguin")
	}
	if _, ok := h.BindReachSet("nope"); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestBindingIrredundantCache(t *testing.T) {
	h := animals(t)
	if !h.BindingIrredundant() {
		t.Fatal("fresh animals should be binding-irredundant")
	}
	// cached second call
	if !h.BindingIrredundant() {
		t.Fatal("cache flipped")
	}
	if err := h.AddEdge("Penguin", "Pamela"); err != nil {
		t.Fatal(err)
	}
	if h.BindingIrredundant() {
		t.Fatal("redundant edge not detected after mutation")
	}
	if err := h.StripRedundant(); err != nil {
		t.Fatal(err)
	}
	if !h.BindingIrredundant() {
		t.Fatal("strip did not restore irredundancy")
	}
}

func TestGraphAndBindingGraphClone(t *testing.T) {
	h := animals(t)
	if err := h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"); err != nil {
		t.Fatal(err)
	}
	g, label := h.Graph()
	bg, blabel := h.BindingGraphClone()
	// The binding graph has the preference edge; the is-a graph does not.
	gp, afp := h.MustID("GalapagosPenguin"), h.MustID("AmazingFlyingPenguin")
	if g.HasEdge(gp, afp) {
		t.Fatal("preference edge in is-a clone")
	}
	if !bg.HasEdge(gp, afp) {
		t.Fatal("preference edge missing from binding clone")
	}
	if label(gp) != "GalapagosPenguin" || blabel(afp) != "AmazingFlyingPenguin" {
		t.Fatal("labels wrong")
	}
	// Clones are independent.
	g.RemoveNode(gp)
	if !h.Has("GalapagosPenguin") {
		t.Fatal("clone mutation leaked")
	}
}

// TestPreferenceReductionKeepsDeliberateRedundancy: an is-a edge that was
// already redundant before any preference must survive the preference-
// induced reduction (the appendix treats it as meaningful).
func TestPreferenceReductionKeepsDeliberateRedundancy(t *testing.T) {
	h := animals(t)
	if err := h.AddEdge("Penguin", "Pamela"); err != nil { // deliberate
		t.Fatal(err)
	}
	if err := h.Prefer("Canary", "Penguin"); err != nil {
		t.Fatal(err)
	}
	// The deliberate redundant edge is still in the binding graph.
	found := false
	for _, c := range h.BindChildren("Penguin") {
		if c == "Pamela" {
			found = true
		}
	}
	if !found {
		t.Fatal("deliberate redundant edge stripped by preference reduction")
	}
}
