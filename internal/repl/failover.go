package repl

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"hrdb/internal/storage"
)

// Failover-side helpers: probing peers for their replication status,
// fencing a deposed primary, and the deposed primary's own rejoin flow
// (CheckDeposed + Demote). Like the rest of this package they speak the
// server's wire contract directly rather than importing internal/server —
// the dependency points from the daemon down into both packages, never
// between them.

// probePeer asks one peer (by client address) for its replication status
// via the LAG verb. Peers running older builds answer with the short
// 4-field payload; term, ID, and source then stay zero-valued.
func probePeer(addr string, timeout time.Duration) (Status, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return Status{}, err
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	bw := bufio.NewWriter(conn)
	if _, err := fmt.Fprintln(bw, "LAG"); err != nil {
		return Status{}, err
	}
	if err := bw.Flush(); err != nil {
		return Status{}, err
	}
	ok, code, payload, err := readResponseFrame(bufio.NewReader(conn), 4096)
	if err != nil {
		return Status{}, err
	}
	if !ok {
		return Status{}, fmt.Errorf("repl: LAG refused by %s: %s: %s", addr, code, payload)
	}
	return parseStatusPayload(payload)
}

// parseStatusPayload decodes a LAG payload: either the legacy 4-field form
// `<ms> <epoch> <offset> <state>` or the extended 7-field form with
// `<term> <id> <source>` appended ("-" encodes an empty id/source).
func parseStatusPayload(payload string) (Status, error) {
	fields := strings.Fields(payload)
	if len(fields) != 4 && len(fields) != 7 {
		return Status{}, fmt.Errorf("%w: bad LAG payload %q", errProto, payload)
	}
	ms, err1 := strconv.ParseInt(fields[0], 10, 64)
	epoch, err2 := strconv.ParseUint(fields[1], 10, 64)
	off, err3 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		return Status{}, fmt.Errorf("%w: bad LAG payload %q", errProto, payload)
	}
	st := Status{Staleness: -1, Epoch: epoch, Offset: off, State: fields[3]}
	if ms >= 0 {
		st.Staleness = time.Duration(ms) * time.Millisecond
	}
	if len(fields) == 7 {
		term, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return Status{}, fmt.Errorf("%w: bad LAG term %q", errProto, fields[4])
		}
		st.Term = term
		if fields[5] != "-" {
			st.ID = fields[5]
		}
		if fields[6] != "-" {
			st.Source = fields[6]
		}
	}
	return st, nil
}

// fenceRemote tells the node at addr (a replication address) that term has
// been asserted, by opening a stream request that announces it: a primary
// answering `REPL 0 0 <term>` with term above its own fences itself before
// replying. Best effort — the node being unreachable is the normal case
// (that's why there was a failover).
func fenceRemote(addr string, term uint64, timeout time.Duration) {
	if addr == "" {
		return
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	bw := bufio.NewWriter(conn)
	if _, err := fmt.Fprintf(bw, "REPL 0 0 %d\n", term); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	// Read whatever the node answers (a stale frame, typically) just so the
	// request is known delivered before the connection drops.
	_, _ = readStreamFrame(bufio.NewReader(conn))
}

// Deposition is CheckDeposed's verdict: the fencing term that supersedes
// this store and where the new primary can be followed.
type Deposition struct {
	// Term is the highest fencing term found among the peers.
	Term uint64
	// Primary is the client address of the peer reporting itself promoted,
	// if any ("" when the peers only relayed a higher term).
	Primary string
	// Source is that peer's advertised replication address to stream from.
	Source string
}

// CheckDeposed probes peers for a fencing term above the store's own. A
// restarting primary calls it before serving: if the cluster moved on while
// it was down, the store is fenced immediately — before a single write
// could be accepted — and the returned Deposition says whom to rejoin. A
// nil return means no reachable peer knows a higher term and the store may
// serve as primary.
func CheckDeposed(st *storage.Store, peers []string, timeout time.Duration) *Deposition {
	own := st.Term()
	var dep *Deposition
	for _, peer := range peers {
		status, err := probePeer(peer, timeout)
		if err != nil || status.Term <= own {
			continue
		}
		if dep == nil || status.Term > dep.Term {
			dep = &Deposition{Term: status.Term}
		}
		if status.Term == dep.Term && status.State == "promoted" {
			dep.Primary = peer
			dep.Source = status.Source
		}
	}
	if dep != nil {
		st.Fence(dep.Term)
	}
	return dep
}

// Demote executes a deposed primary's divergence-aware rejoin, given the
// fenced store and the Deposition that fenced it:
//
//  1. The new primary's bootstrap is fetched (from dep.Source) to learn the
//     takeover divergence point — the position in THIS store's lineage up
//     to which the promoting replica had applied.
//  2. The store's WAL suffix past that point — committed here, never
//     replicated, contradicted by the new timeline — is quarantined to a
//     sidecar file instead of being silently discarded.
//  3. The store is closed and its snapshot and WALs removed, so the
//     directory is ready for a fresh bootstrap from the new primary.
//
// It returns the quarantine sidecar path ("" when nothing diverged). The
// caller then starts a NewReplica against the new primary, typically with
// PromoteDir pointing back at the same directory.
func Demote(st *storage.Store, dep *Deposition, timeout time.Duration) (quarantine string, err error) {
	if dep == nil || dep.Source == "" {
		return "", fmt.Errorf("repl: demote: no replication source to rejoin")
	}
	boot, err := fetchBootstrap(dep.Source, timeout)
	if err != nil {
		return "", fmt.Errorf("repl: demote: %w", err)
	}
	if boot.Term < dep.Term {
		return "", fmt.Errorf("repl: demote: source %s is behind the deposing term (%d < %d)", dep.Source, boot.Term, dep.Term)
	}
	quarantine, n, err := st.QuarantineSuffix(boot.TakeoverEpoch, boot.TakeoverOffset)
	if err != nil {
		return "", fmt.Errorf("repl: demote: quarantine: %w", err)
	}
	if n > 0 {
		metricQuarantinedBytes.Add(uint64(n))
	}
	dir := st.Dir()
	if err := st.Close(); err != nil {
		return quarantine, fmt.Errorf("repl: demote: close: %w", err)
	}
	if err := storage.RemoveStoreFiles(dir); err != nil {
		return quarantine, fmt.Errorf("repl: demote: clear store: %w", err)
	}
	return quarantine, nil
}

// fetchBootstrap retrieves and decodes a SNAP payload from a replication
// address, without installing it anywhere — Demote only needs the metadata.
func fetchBootstrap(addr string, timeout time.Duration) (bootstrap, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return bootstrap{}, err
	}
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	bw := bufio.NewWriter(conn)
	if _, err := fmt.Fprintln(bw, "SNAP"); err != nil {
		return bootstrap{}, err
	}
	if err := bw.Flush(); err != nil {
		return bootstrap{}, err
	}
	ok, code, payload, err := readResponseFrame(bufio.NewReader(conn), maxSnapshotBytes)
	if err != nil {
		return bootstrap{}, err
	}
	if !ok {
		return bootstrap{}, fmt.Errorf("SNAP refused by %s: %s: %s", addr, code, payload)
	}
	return decodeBootstrap([]byte(payload))
}
