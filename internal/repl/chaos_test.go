package repl

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/server"
	"hrdb/internal/storage"
)

// Chaos acceptance tests: the replication stream survives connections
// severed mid-record and primary death. Run under -race (make test-repl).

// chaosRounds sizes a chaos loop: def normally, short under -short, or an
// explicit CHAOS_ROUNDS=<n> override for soak runs (CHAOS_ROUNDS=500
// make test-failover keeps a workstation busy for minutes instead of
// seconds; the tests are written so any round count is valid).
func chaosRounds(t *testing.T, def, short int) int {
	t.Helper()
	if v := os.Getenv("CHAOS_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("CHAOS_ROUNDS=%q: want a positive integer", v)
		}
		return n
	}
	if testing.Short() {
		return short
	}
	return def
}

// countWALRecords decodes the primary's entire epoch-0 WAL and returns the
// record count — the ground truth the replica's applied count must equal
// exactly (no duplicates, no gaps).
func countWALRecords(t *testing.T, st *storage.Store) uint64 {
	t.Helper()
	epoch, end := st.Position()
	if epoch != 0 {
		t.Fatalf("workload unexpectedly checkpointed: epoch %d", epoch)
	}
	dec := storage.NewStreamDecoder()
	var off int64
	for off < end {
		chunk, err := st.ReadWAL(0, off, 64<<10)
		if err != nil {
			t.Fatalf("ReadWAL(%d): %v", off, err)
		}
		dec.Feed(chunk)
		off += int64(len(chunk))
	}
	var n uint64
	for {
		_, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("decode WAL: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if dec.Buffered() != 0 {
		t.Fatalf("durable WAL ends mid-frame (%d bytes buffered)", dec.Buffered())
	}
	return n
}

// TestChaosSeveredStreamConverges is the headline acceptance test: a
// replica streaming through a chaos proxy whose connections are severed
// mid-record, over and over, while the primary commits transactions. After
// the chaos stops the replica must converge to the primary's exact logical
// state having applied every WAL record exactly once, and its lag must
// return to zero.
func TestChaosSeveredStreamConverges(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{
		HeartbeatInterval: 10 * time.Millisecond,
		// Small chunks so severs land mid-record often.
		ChunkBytes: 64,
	})
	proxy, err := server.NewChaosProxy(p.srv.Addr())
	if err != nil {
		t.Fatalf("NewChaosProxy: %v", err)
	}
	defer proxy.Close()

	rep := startReplica(t, proxy.Addr())
	// Sync at the empty store first so the bootstrap lands at offset 0 and
	// every workload record travels the stream — the applied-record count
	// below then equals the full WAL record count.
	waitConverged(t, p.store, rep)

	// Schema first, then chaos: sever the response path after ever-varying
	// byte budgets while committing transactions. Budgets cycle through
	// small primes so cuts land at different points of SHIP frames —
	// including mid-header and mid-payload — across iterations.
	must(t, p.store.CreateHierarchy("D"))
	must(t, p.store.AddClass("D", "C1"))
	must(t, p.store.AddClass("D", "C2", "C1"))
	must(t, p.store.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))

	budgets := []int64{3, 61, 17, 127, 7, 251, 37, 89, 11, 199}
	rounds := chaosRounds(t, 40, 10)
	for i := 0; i < rounds; i++ {
		proxy.SeverResponseAfter(budgets[i%len(budgets)])
		inst := fmt.Sprintf("i%03d", i)
		must(t, p.store.AddInstance("D", inst, "C2"))
		// A transaction bracket per round: severed brackets must re-ship
		// whole, never apply twice, never apply half.
		must(t, p.store.ApplyTx([]catalog.TxOp{
			{Kind: "assert", Relation: "R", Values: []string{inst}},
			{Kind: "deny", Relation: "R", Values: []string{"C2"}},
			{Kind: "retract", Relation: "R", Values: []string{"C2"}},
		}))
		if i%4 == 0 {
			// Give the replica a beat to reconnect mid-workload so severs
			// hit live streams, not just dial attempts.
			time.Sleep(2 * time.Millisecond)
		}
	}
	proxy.SeverResponseAfter(-1) // disarm; let the stream heal

	waitConverged(t, p.store, rep)

	want := countWALRecords(t, p.store)
	if got := rep.AppliedRecords(); got != want {
		t.Fatalf("replica applied %d records, primary WAL holds %d (duplicate or gap)", got, want)
	}

	// Lag returns to zero: caught up now, and the byte-lag gauge agrees.
	staleness, _, _, state := rep.Lag()
	if staleness < 0 || staleness > 10*time.Second {
		t.Fatalf("staleness after convergence = %v", staleness)
	}
	if state != "streaming" {
		t.Fatalf("state after convergence = %q, want streaming", state)
	}
}

// TestChaosFailoverPromote kills the primary outright, promotes the
// replica through the PROMOTE verb, and verifies writes continue against
// the promoted copy — with all pre-failover committed state intact.
func TestChaosFailoverPromote(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.Assert("Flies", "Bird"))

	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)
	preFailover := storage.Fingerprint(p.store.Database())

	// The replica serves read-only HQL sessions through its own server.
	repSrv := server.New(ReplicaTarget{R: rep}, server.Options{
		LagProbe: func() server.LagInfo {
			staleness, epoch, offset, state := rep.Lag()
			return server.LagInfo{Staleness: staleness, Epoch: epoch, Offset: offset, State: state}
		},
		Promote: rep.Promote,
	})
	if err := repSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start replica server: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		repSrv.Shutdown(ctx)
	}()

	cli, err := server.Dial(repSrv.Addr())
	if err != nil {
		t.Fatalf("Dial replica: %v", err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Reads work on the replica; writes are refused before promotion.
	if out, err := cli.Exec(ctx, "HOLDS Flies (Tweety);"); err != nil || out == "" {
		t.Fatalf("replica read = %q, %v", out, err)
	}
	if _, err := cli.Exec(ctx, "ASSERT Flies (Tweety);"); err == nil {
		t.Fatal("write on unpromoted replica succeeded")
	}

	// Kill the primary: sever its server and its store, hard.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	p.srv.Shutdown(shutCtx)
	shutCancel()
	must(t, p.store.Close())

	// Manual failover.
	if err := cli.Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := storage.Fingerprint(rep.Database()); got != preFailover {
		t.Fatalf("promotion lost state:\nwant %s\ngot  %s", preFailover, got)
	}

	// Writes continue on the promoted replica.
	if _, err := cli.Exec(ctx, "INSTANCE Robin UNDER Bird; ASSERT Flies (Robin);"); err != nil {
		t.Fatalf("write after promote: %v", err)
	}
	out, err := cli.Exec(ctx, "HOLDS Flies (Robin);")
	if err != nil {
		t.Fatalf("read after promote: %v", err)
	}
	if out == "" {
		t.Fatal("promoted replica lost the post-failover write")
	}

	// The lag probe reports the promoted state to routers.
	li, err := cli.Lag(ctx)
	if err != nil {
		t.Fatalf("Lag: %v", err)
	}
	if li.State != "promoted" || li.Staleness != 0 {
		t.Fatalf("Lag after promote = %v/%q, want 0/promoted", li.Staleness, li.State)
	}
}
