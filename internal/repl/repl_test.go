package repl

import (
	"context"
	"errors"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/server"
	"hrdb/internal/storage"
)

// This file is the replication test harness plus the streaming unit tests;
// the chaos/failover acceptance tests live in chaos_test.go. Tests build a
// real primary — durable store, Primary source, network server — and real
// replicas streaming over TCP, because the subsystem's value is exactly
// the integration: resume positions surviving reconnects, rotation across
// checkpoints, and snapshot re-bootstrap when the WAL is gone.

// primaryHarness is a running primary: a durable store served over TCP
// with replication enabled.
type primaryHarness struct {
	store *storage.Store
	prim  *Primary
	srv   *server.Server
}

func startPrimary(t *testing.T, popts PrimaryOptions) *primaryHarness {
	t.Helper()
	st, err := storage.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	prim := NewPrimary(st, popts)
	srv := server.New(st, server.Options{Repl: prim})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &primaryHarness{store: st, prim: prim, srv: srv}
}

// startReplica follows addr and tears down with the test.
func startReplica(t *testing.T, addr string) *Replica {
	t.Helper()
	rep := NewReplica(addr, ReplicaOptions{
		DialTimeout:      time.Second,
		ReconnectBackoff: 10 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
	})
	t.Cleanup(func() { rep.Close() })
	return rep
}

// waitConverged blocks until the replica has applied everything the
// primary's store holds (positions equal and recently confirmed), then
// compares logical fingerprints.
func waitConverged(t *testing.T, st *storage.Store, rep *Replica) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		pe, po := st.Position()
		staleness, re, ro, _ := rep.Lag()
		if staleness >= 0 && re == pe && ro == po {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never converged: primary at %d/%d, replica at %d/%d (staleness %v)",
				pe, po, re, ro, staleness)
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := storage.Fingerprint(st.Database())
	got := storage.Fingerprint(rep.Database())
	if got != want {
		t.Fatalf("replica diverged:\nprimary: %s\nreplica: %s", want, got)
	}
}

func TestReplicaBootstrapAndStream(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))

	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)

	// Writes after the bootstrap arrive via the live stream.
	must(t, p.store.AddClass("Animal", "Penguin", "Bird"))
	must(t, p.store.AddInstance("Animal", "Paul", "Penguin"))
	waitConverged(t, p.store, rep)

	// Transactions apply atomically: a committed bracket lands whole.
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.ApplyTx([]catalog.TxOp{
		{Kind: "assert", Relation: "Flies", Values: []string{"Bird"}},
		{Kind: "deny", Relation: "Flies", Values: []string{"Penguin"}},
	}))
	waitConverged(t, p.store, rep)

	if n := rep.AppliedRecords(); n == 0 {
		t.Fatal("replica applied no records over the stream")
	}
}

func TestReplicaMutationsRejectedUntilPromoted(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)

	target := ReplicaTarget{R: rep}
	if err := target.CreateHierarchy("Plant"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("CreateHierarchy on replica = %v, want ErrReadOnlyReplica", err)
	}
	if err := target.Assert("Flies", "Bird"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Assert on replica = %v, want ErrReadOnlyReplica", err)
	}

	if err := rep.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := target.CreateHierarchy("Plant"); err != nil {
		t.Fatalf("CreateHierarchy after promote: %v", err)
	}
	if staleness, _, _, state := rep.Lag(); staleness != 0 || state != "promoted" {
		t.Fatalf("Lag after promote = %v/%s, want 0/promoted", staleness, state)
	}
}

func TestReplicaRotatesAcrossCheckpoint(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)

	// Checkpoint while the replica is caught up: the stream crosses the
	// epoch boundary with a ROTATE, no re-bootstrap.
	boots := rep.bootstraps()
	must(t, p.store.Checkpoint())
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	waitConverged(t, p.store, rep)
	if e, _ := p.store.Position(); e != 1 {
		t.Fatalf("primary epoch = %d, want 1", e)
	}
	if got := rep.bootstraps(); got != boots {
		t.Fatalf("replica re-bootstrapped across a caught-up checkpoint (%d -> %d)", boots, got)
	}

	// And again, to cover retired-epoch catch-up bookkeeping.
	must(t, p.store.Checkpoint())
	must(t, p.store.AddInstance("Animal", "Robin", "Bird"))
	waitConverged(t, p.store, rep)
}

// bootstraps returns how many snapshot bootstraps this replica has done
// (test helper on the package-global metric is useless once several
// replicas run in one process, so count per replica).
func (r *Replica) bootstraps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nBootstraps
}

func TestPrimaryServesRetiredEpochTail(t *testing.T) {
	// A follower that stops mid-epoch and reconnects after a checkpoint
	// whose GC failed (old WAL still on disk) must be able to finish the
	// retired epoch from the file and ROTATE forward.
	dir := t.TempDir()
	fs := storage.NewFaultFS(storage.OsFS{})
	st, err := storage.OpenOptions(dir, storage.Options{FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	prim := NewPrimary(st, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
	srv := server.New(st, server.Options{Repl: prim})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	must(t, st.CreateHierarchy("Animal"))
	must(t, st.AddClass("Animal", "Bird"))

	// Checkpoint with Remove suppressed: epoch 0's WAL survives on disk.
	fs.FailRemove(true)
	if err := st.Checkpoint(); !errors.Is(err, storage.ErrCheckpointGC) {
		t.Fatalf("Checkpoint with failing remove = %v, want ErrCheckpointGC", err)
	}
	fs.FailRemove(false)
	must(t, st.AddInstance("Animal", "Tweety", "Bird"))

	// A replica bootstrapping now starts at epoch 1; but a follower asking
	// for epoch 0 from offset 0 replays the retired file, then rotates.
	rep := startReplica(t, srv.Addr())
	waitConverged(t, st, rep)
}

func TestStaleFollowerRebootstraps(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 20 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))

	proxy, err := server.NewChaosProxy(p.srv.Addr())
	if err != nil {
		t.Fatalf("NewChaosProxy: %v", err)
	}
	defer proxy.Close()

	rep := startReplica(t, proxy.Addr())
	waitConverged(t, p.store, rep)
	boots := rep.bootstraps()

	// Black-hole the stream so the replica holds its epoch-0 position
	// while the primary checkpoints (removing epoch 0's WAL) and keeps
	// writing.
	proxy.DropResponses(true)
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	must(t, p.store.Checkpoint())
	must(t, p.store.AddInstance("Animal", "Robin", "Bird"))

	// Sever: the replica reconnects with its stale epoch-0 position, is
	// told "stale", re-bootstraps from a fresh snapshot, and converges.
	proxy.DropResponses(false)
	proxy.KillAll()
	waitConverged(t, p.store, rep)
	if got := rep.bootstraps(); got <= boots {
		t.Fatalf("expected a snapshot re-bootstrap after stale rejection (bootstraps %d -> %d)", boots, got)
	}
}

func TestPrimaryAckTracking(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)

	deadline := time.Now().Add(5 * time.Second)
	pe, po := p.store.Position()
	for {
		ae, ao := p.prim.AckedPosition()
		if ae == pe && ao == po {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw the caught-up ack: want %d/%d, acked %d/%d", pe, po, ae, ao)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = rep
}

func TestLagVerbOverClient(t *testing.T) {
	// The LAG verb end-to-end: replica server exposes its probe; a client
	// parses it. Also pins the wire format both ways.
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)

	repSrv := server.New(ReplicaTarget{R: rep}, server.Options{
		LagProbe: func() server.LagInfo {
			staleness, epoch, offset, state := rep.Lag()
			return server.LagInfo{Staleness: staleness, Epoch: epoch, Offset: offset, State: state}
		},
		Promote: rep.Promote,
	})
	if err := repSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start replica server: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		repSrv.Shutdown(ctx)
	}()

	cli, err := server.Dial(repSrv.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	li, err := cli.Lag(ctx)
	if err != nil {
		t.Fatalf("Lag: %v", err)
	}
	if li.State != "streaming" {
		t.Fatalf("Lag state = %q, want streaming", li.State)
	}
	if li.Staleness < 0 {
		t.Fatalf("Lag staleness = %v, want known (>= 0)", li.Staleness)
	}
	pe, po := p.store.Position()
	if li.Epoch != pe || li.Offset != po {
		t.Fatalf("Lag position = %d/%d, want %d/%d", li.Epoch, li.Offset, pe, po)
	}

	// PROMOTE over the wire flips the replica writable.
	if err := cli.Promote(ctx); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if !rep.Promoted() {
		t.Fatal("replica not promoted after PROMOTE verb")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
