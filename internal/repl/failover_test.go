package repl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/server"
	"hrdb/internal/storage"
)

// Self-healing failover acceptance tests: fencing terms, automatic
// election, and divergence-aware rejoin. Like chaos_test.go these run the
// real stack — durable stores, TCP servers, streaming replicas — because
// the properties under test (at-most-one-writable, acked-write survival,
// quarantined divergence) are properties of the integration.

// failoverNode is one replica node wired the way hrserved wires it: a
// client-facing server (EXEC/LAG/PROMOTE), a replication listener
// (SNAP/REPL once promoted), and the replica itself.
type failoverNode struct {
	rep     *Replica
	srv     *server.Server // client address — what peers probe with LAG
	replSrv *server.Server // replication address — what followers stream from
}

// lagProbeFor adapts a replica's Status to the server's LAG hook.
func lagProbeFor(rep *Replica) func() server.LagInfo {
	return func() server.LagInfo {
		st := rep.Status()
		return server.LagInfo{
			Staleness: st.Staleness,
			Epoch:     st.Epoch,
			Offset:    st.Offset,
			State:     st.State,
			Term:      st.Term,
			ID:        st.ID,
			Source:    st.Source,
		}
	}
}

// startNode builds a replica node following upstream. Peers are wired
// afterwards with SetPeers (their addresses don't exist yet).
func startNode(t *testing.T, upstream, id string, opts ReplicaOptions) *failoverNode {
	t.Helper()
	opts.ID = id
	if opts.DialTimeout == 0 {
		opts.DialTimeout = time.Second
	}
	if opts.ReconnectBackoff == 0 {
		opts.ReconnectBackoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 200 * time.Millisecond
	}
	rep := NewReplica(upstream, opts)
	t.Cleanup(func() { rep.Close() })

	replSrv := server.New(ReplicaTarget{R: rep}, server.Options{Repl: rep})
	if err := replSrv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start repl listener: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		replSrv.Shutdown(ctx)
	})
	rep.SetAdvertise(replSrv.Addr())

	srv := server.New(ReplicaTarget{R: rep}, server.Options{
		LagProbe: lagProbeFor(rep),
		Promote:  rep.Promote,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start client listener: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return &failoverNode{rep: rep, srv: srv, replSrv: replSrv}
}

// TestAutoFailoverElectsExactlyOne is acceptance test (a): kill the primary
// under a two-replica cluster with auto-failover on; within the election
// timeout exactly one replica promotes itself (never both — split-brain
// prevention), every write the primary acknowledged survives on the winner,
// and the loser retargets to the winner and converges.
func TestAutoFailoverElectsExactlyOne(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.Assert("Flies", "Bird"))

	opts := ReplicaOptions{
		AutoFailover:    true,
		ElectionTimeout: 300 * time.Millisecond,
	}
	o1, o2 := opts, opts
	o1.PromoteDir = t.TempDir()
	o2.PromoteDir = t.TempDir()
	n1 := startNode(t, p.srv.Addr(), "r1", o1)
	n2 := startNode(t, p.srv.Addr(), "r2", o2)
	n1.rep.SetPeers([]string{n2.srv.Addr()})
	n2.rep.SetPeers([]string{n1.srv.Addr()})

	waitConverged(t, p.store, n1.rep)
	waitConverged(t, p.store, n2.rep)
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	waitConverged(t, p.store, n1.rep)
	waitConverged(t, p.store, n2.rep)
	acked := storage.Fingerprint(p.store.Database())

	// Kill the primary outright: server and store.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	p.srv.Shutdown(shutCtx)
	shutCancel()
	must(t, p.store.Close())

	// Wait for a winner, asserting at-most-one-writable on every poll.
	deadline := time.Now().Add(15 * time.Second)
	var winner, loser *failoverNode
	for {
		p1, p2 := n1.rep.Promoted(), n2.rep.Promoted()
		if p1 && p2 {
			t.Fatal("split brain: both replicas promoted")
		}
		if p1 {
			winner, loser = n1, n2
			break
		}
		if p2 {
			winner, loser = n2, n1
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no replica promoted after primary death")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The winner holds a durable store under a new fencing term with every
	// acknowledged write intact.
	st := winner.rep.Store()
	if st == nil {
		t.Fatal("winner promoted without a durable store")
	}
	if st.Term() == 0 {
		t.Fatal("winner's store carries no fencing term")
	}
	if got := storage.Fingerprint(st.Database()); got != acked {
		t.Fatalf("acked writes lost in failover:\nwant %s\ngot  %s", acked, got)
	}

	// The loser must stand down for good (keep asserting while the cluster
	// settles), retarget to the winner, and converge — including a write
	// committed only after the failover.
	must(t, st.AddInstance("Animal", "Robin", "Bird"))
	settled := time.Now().Add(2 * time.Second)
	for time.Now().Before(settled) {
		if loser.rep.Promoted() {
			t.Fatal("split brain: loser promoted after winner")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, st, loser.rep)
	if loser.rep.Term() != winner.rep.Term() {
		t.Fatalf("loser term %d, winner term %d", loser.rep.Term(), winner.rep.Term())
	}
}

// TestFencedPrimaryRejectsWritesStale is acceptance test (b): a replica
// promotes while the old primary is still alive and serving. The promotion
// fences the old primary (the fencing REPL probe carries the new term), so
// client writes against it fail with the retryable "stale" error instead of
// forking history — at most one node is writable throughout.
func TestFencedPrimaryRejectsWritesStale(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))

	n1 := startNode(t, p.srv.Addr(), "r1", ReplicaOptions{PromoteDir: t.TempDir()})
	waitConverged(t, p.store, n1.rep)

	cli, err := server.Dial(p.srv.Addr())
	if err != nil {
		t.Fatalf("Dial primary: %v", err)
	}
	defer cli.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cli.Exec(ctx, "INSTANCE Tweety UNDER Bird;"); err != nil {
		t.Fatalf("write before failover: %v", err)
	}
	waitConverged(t, p.store, n1.rep)

	// Manual promotion while the primary is alive. The promote path sends
	// the fencing probe to the old primary's replication endpoint.
	if err := n1.rep.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.store.FencedBy() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("old primary never fenced after replica promotion")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Post-deposition writes are rejected with the retryable stale code —
	// both over the wire and straight at the store.
	if _, err := cli.Exec(ctx, "INSTANCE Robin UNDER Bird;"); !errors.Is(err, server.ErrStaleReplica) {
		t.Fatalf("write on fenced primary = %v, want ErrStaleReplica", err)
	}
	var se *server.ServerError
	if _, err := cli.Exec(ctx, "INSTANCE Robin UNDER Bird;"); !errors.As(err, &se) || string(se.Code) != "stale" {
		t.Fatalf("write on fenced primary = %v, want ERR stale", err)
	}
	if err := p.store.AddInstance("Animal", "Robin", "Bird"); !errors.Is(err, storage.ErrDeposed) {
		t.Fatalf("direct store write = %v, want ErrDeposed", err)
	}
	// Reads still work on the fenced store (it is a valid, stale copy).
	if _, err := p.store.Database().Hierarchy("Animal"); err != nil {
		t.Fatalf("read on fenced store: %v", err)
	}

	// Exactly one writable node: the promoted replica.
	if !n1.rep.Promoted() {
		t.Fatal("replica not promoted")
	}
	must(t, n1.rep.Store().AddInstance("Animal", "Robin", "Bird"))
}

// TestDeposedPrimaryQuarantinesAndRejoins is acceptance test (c): the old
// primary keeps committing after its replica's view was frozen, the replica
// promotes (its takeover point predates those commits), and the deposed
// primary then rejoins — its divergent WAL suffix must land in a quarantine
// sidecar, its store must re-bootstrap from the winner, and the rejoined
// node must converge to the winner's fingerprint.
func TestDeposedPrimaryQuarantinesAndRejoins(t *testing.T) {
	dir := t.TempDir()
	st, err := storage.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	closed := false
	defer func() {
		if !closed {
			st.Close()
		}
	}()
	prim := NewPrimary(st, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	srv := server.New(st, server.Options{Repl: prim})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	must(t, st.CreateHierarchy("Animal"))
	must(t, st.AddClass("Animal", "Bird"))

	// The replica follows through a proxy so its view can be frozen while
	// the primary keeps committing.
	proxy, err := server.NewChaosProxy(srv.Addr())
	if err != nil {
		t.Fatalf("NewChaosProxy: %v", err)
	}
	defer proxy.Close()
	n1 := startNode(t, proxy.Addr(), "r1", ReplicaOptions{PromoteDir: t.TempDir()})
	waitConverged(t, st, n1.rep)

	// Freeze the stream, then commit a divergent suffix only the primary
	// ever sees.
	proxy.DropResponses(true)
	must(t, st.AddInstance("Animal", "Lost1", "Bird"))
	must(t, st.AddInstance("Animal", "Lost2", "Bird"))

	// The replica promotes at its frozen position: the takeover point
	// predates the Lost* commits, so history forks here.
	if err := n1.rep.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	winSt := n1.rep.Store()
	must(t, winSt.AddInstance("Animal", "PostFailover", "Bird"))

	// The deposed primary rejoins: probe the cluster, discover the higher
	// term, quarantine the divergent suffix, dismantle the store.
	dep := CheckDeposed(st, []string{n1.srv.Addr()}, 2*time.Second)
	if dep == nil {
		t.Fatal("CheckDeposed found no deposition")
	}
	if dep.Term != n1.rep.Term() {
		t.Fatalf("deposition term = %d, want %d", dep.Term, n1.rep.Term())
	}
	if dep.Source != n1.replSrv.Addr() {
		t.Fatalf("deposition source = %q, want %q", dep.Source, n1.replSrv.Addr())
	}
	// CheckDeposed fences immediately: no more commits on the loser.
	if err := st.AddInstance("Animal", "Lost3", "Bird"); !errors.Is(err, storage.ErrDeposed) {
		t.Fatalf("write after CheckDeposed = %v, want ErrDeposed", err)
	}

	quarantine, err := Demote(st, dep, 2*time.Second)
	if err != nil {
		t.Fatalf("Demote: %v", err)
	}
	closed = true
	if quarantine == "" {
		t.Fatal("divergent suffix produced no quarantine file")
	}

	// The sidecar holds exactly the forked history: decodable WAL records
	// naming the Lost* instances.
	raw, err := os.ReadFile(quarantine)
	if err != nil {
		t.Fatalf("read quarantine: %v", err)
	}
	dec := storage.NewStreamDecoder()
	dec.Feed(raw)
	var names []string
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			t.Fatalf("decode quarantine: %v", err)
		}
		if !ok {
			break
		}
		names = append(names, strings.Join(rec.Args, " "))
	}
	joined := strings.Join(names, "\n")
	if !strings.Contains(joined, "Lost1") || !strings.Contains(joined, "Lost2") {
		t.Fatalf("quarantine misses the divergent records:\n%s", joined)
	}
	if strings.Contains(joined, "Tweety") {
		t.Fatalf("quarantine contains replicated history:\n%s", joined)
	}

	// The store files are gone (fresh bootstrap territory); the sidecar
	// survives for the operator.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(quarantine) {
			t.Fatalf("store file %s survived demotion", e.Name())
		}
	}

	// Rejoin as a replica of the winner and converge to its fingerprint —
	// which includes the post-failover write and excludes the quarantined
	// suffix.
	rejoined := startReplica(t, dep.Source)
	waitConverged(t, winSt, rejoined)
	if _, err := rejoined.Database().Hierarchy("Animal"); err != nil {
		t.Fatalf("rejoined replica state: %v", err)
	}
}

// TestBootstrapDuringCheckpointRotation is the follower-bootstrap vs
// checkpoint-rotation race (satellite S3): replicas that bootstrap while
// the primary checkpoints concurrently — possibly landing on an epoch that
// is checkpointed away before their stream starts — must converge anyway
// (via ROTATE or a stale re-bootstrap), never wedge or desync.
func TestBootstrapDuringCheckpointRotation(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond, ChunkBytes: 64})
	must(t, p.store.CreateHierarchy("D"))
	must(t, p.store.AddClass("D", "C"))

	rounds := chaosRounds(t, 15, 5)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			if err := p.store.AddInstance("D", fmt.Sprintf("i%03d", i), "C"); err != nil {
				done <- err
				return
			}
			if err := p.store.Checkpoint(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	// Replicas arrive while epochs churn underneath their bootstraps.
	rep1 := startReplica(t, p.srv.Addr())
	time.Sleep(5 * time.Millisecond)
	rep2 := startReplica(t, p.srv.Addr())
	if err := <-done; err != nil {
		t.Fatalf("workload: %v", err)
	}
	waitConverged(t, p.store, rep1)
	waitConverged(t, p.store, rep2)
}

// TestReplicaStateGaugeAndLagUnknown pins the S2 metrics fix: the
// per-state gauge tracks the lifecycle with exactly one state set, and the
// byte-lag gauge reports -1 (unknown) when the durable high-water mark
// lives in a different epoch than the applied position — not 0, which used
// to make "arbitrarily stale" indistinguishable from "caught up".
func TestReplicaStateGaugeAndLagUnknown(t *testing.T) {
	gaugeIs := func(state string) bool {
		for s, g := range replicaStateGauges {
			want := int64(0)
			if s == state {
				want = 1
			}
			if g.Value() != want {
				return false
			}
		}
		return true
	}
	waitGauge := func(state string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !gaugeIs(state) {
			if time.Now().After(deadline) {
				t.Fatalf("state gauge never settled on %q", state)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)
	waitGauge("streaming")
	if metricLagBytes.Value() != 0 {
		t.Fatalf("caught-up lag gauge = %d, want 0", metricLagBytes.Value())
	}

	// Unknown lag: the high-water mark moves to another epoch while the
	// applied position stays behind — no byte distance exists.
	rep.mu.Lock()
	rep.pos = position{epoch: 0, offset: 10}
	rep.highWater = position{epoch: 0, offset: 10}
	rep.mu.Unlock()
	rep.observe(position{epoch: 2, offset: 4}, storage.NewApplier(catalog.New()))
	if metricLagBytes.Value() != -1 {
		t.Fatalf("cross-epoch lag gauge = %d, want -1 (unknown)", metricLagBytes.Value())
	}
	// Same epoch: a real byte distance.
	rep.mu.Lock()
	rep.highWater = position{epoch: 0, offset: 10}
	rep.mu.Unlock()
	rep.observe(position{epoch: 0, offset: 25}, storage.NewApplier(catalog.New()))
	if metricLagBytes.Value() != 15 {
		t.Fatalf("same-epoch lag gauge = %d, want 15", metricLagBytes.Value())
	}

	must(t, rep.Close())
	waitGauge("stopped")
}
