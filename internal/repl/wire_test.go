package repl

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"hrdb/internal/storage"
)

// Frame-level round trips and malformed-input rejection for the stream
// protocol, independent of any live primary/replica.

func frameReader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestPositionBefore(t *testing.T) {
	cases := []struct {
		p, q position
		want bool
	}{
		{position{0, 0}, position{0, 1}, true},
		{position{0, 99}, position{1, 0}, true},
		{position{1, 0}, position{0, 99}, false},
		{position{2, 5}, position{2, 5}, false},
		{position{2, 6}, position{2, 5}, false},
	}
	for _, c := range cases {
		if got := c.p.before(c.q); got != c.want {
			t.Errorf("%v.before(%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestStreamFrameRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	pos := position{epoch: 3, offset: 1024}
	chunk := []byte("raw wal bytes\nwith a newline inside")
	must(t, writeShip(w, 7, pos, chunk))
	must(t, writeHB(w, 7, position{epoch: 3, offset: 2048}))
	must(t, writeRotate(w, 7, 4))
	must(t, writeStale(w, "epoch 3 was checkpointed away"))

	br := bufio.NewReader(&buf)
	f, err := readStreamFrame(br)
	must(t, err)
	if f.kind != "SHIP" || f.term != 7 || f.pos != pos || !bytes.Equal(f.payload, chunk) {
		t.Fatalf("SHIP round trip = %+v", f)
	}
	f, err = readStreamFrame(br)
	must(t, err)
	if f.kind != "HB" || f.term != 7 || f.pos != (position{epoch: 3, offset: 2048}) {
		t.Fatalf("HB round trip = %+v", f)
	}
	f, err = readStreamFrame(br)
	must(t, err)
	if f.kind != "ROTATE" || f.term != 7 || f.pos.epoch != 4 {
		t.Fatalf("ROTATE round trip = %+v", f)
	}
	f, err = readStreamFrame(br)
	must(t, err)
	if f.kind != "ERR" || f.code != "stale" || f.msg != "epoch 3 was checkpointed away" {
		t.Fatalf("ERR round trip = %+v", f)
	}
}

func TestAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	must(t, writeAck(w, 9, position{epoch: 7, offset: 4096}))
	term, got, err := readAck(bufio.NewReader(&buf))
	must(t, err)
	if term != 9 || got != (position{epoch: 7, offset: 4096}) {
		t.Fatalf("ACK round trip = term %d pos %+v", term, got)
	}

	for _, bad := range []string{
		"ACK 1 2\n", "NAK 1 2 3\n", "ACK x 2 3\n", "ACK 1 x 3\n", "ACK 1 2 x\n",
		"ACK 1 2 -3\n", "ACK 1 2 3 4\n", "\n",
	} {
		if _, _, err := readAck(frameReader(bad)); !errors.Is(err, errProto) {
			t.Errorf("readAck(%q) = %v, want protocol error", bad, err)
		}
	}
}

func TestReadStreamFrameRejectsMalformed(t *testing.T) {
	protoErrs := []string{
		"\n",
		"NOPE 1 2\n",
		"SHIP 1 2 3\n", // term-less header
		"SHIP x 0 0 0\n\n",
		"SHIP 0 x 0 0\n\n",
		"SHIP 0 0 -1 0\n\n",
		"SHIP 0 0 0 9999999999\n", // beyond maxShipChunk
		"HB 1 2\n",                // term-less header
		"HB x 1 2\n",
		"HB 0 x 2\n",
		"HB 0 1 -2\n",
		"ROTATE\n",
		"ROTATE 1\n", // term-less header
		"ROTATE x 1\n",
		"ROTATE 1 x\n",
		"ERR stale 0\n",
		"ERR stale 0 99999999\n", // beyond maxShipChunk
	}
	for _, bad := range protoErrs {
		if _, err := readStreamFrame(frameReader(bad)); !errors.Is(err, errProto) {
			t.Errorf("readStreamFrame(%q) = %v, want protocol error", bad, err)
		}
	}
	// A SHIP whose payload is cut short or unterminated fails, but as an IO
	// or framing error rather than silent truncation.
	if _, err := readStreamFrame(frameReader("SHIP 0 0 0 5\nab")); err == nil {
		t.Error("short SHIP payload accepted")
	}
	if _, err := readStreamFrame(frameReader("SHIP 0 0 0 2\nabX")); !errors.Is(err, errProto) {
		t.Error("unterminated SHIP payload accepted")
	}
}

func TestReadResponseFrame(t *testing.T) {
	ok, code, payload, err := readResponseFrame(frameReader("OK 5\nhello\n"), 1<<20)
	must(t, err)
	if !ok || code != "" || payload != "hello" {
		t.Fatalf("OK frame = ok=%v code=%q payload=%q", ok, code, payload)
	}
	ok, code, payload, err = readResponseFrame(frameReader("ERR stale 0 4\ngone\n"), 1<<20)
	must(t, err)
	if ok || code != "stale" || payload != "gone" {
		t.Fatalf("ERR frame = ok=%v code=%q payload=%q", ok, code, payload)
	}

	for _, bad := range []string{
		"\n", "OK\n", "OK x\n", "OK -1\n", "OK 999\nhi\n", "ERR exec 0\n", "WAT 1\nx\n",
		"OK 2\nhiX", // bad terminator
	} {
		if _, _, _, err := readResponseFrame(frameReader(bad), 16); !errors.Is(err, errProto) {
			t.Errorf("readResponseFrame(%q) = %v, want protocol error", bad, err)
		}
	}
	// Truncated payload is an IO error.
	if _, _, _, err := readResponseFrame(frameReader("OK 5\nab"), 16); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestBootstrapRoundTrip(t *testing.T) {
	b := bootstrap{Spec: storage.DatabaseSpec{}, Epoch: 2, Offset: 777,
		Term: 5, TakeoverEpoch: 1, TakeoverOffset: 333}
	enc, err := encodeBootstrap(b)
	must(t, err)
	got, err := decodeBootstrap(enc)
	must(t, err)
	if got.Epoch != 2 || got.Offset != 777 || got.Term != 5 ||
		got.TakeoverEpoch != 1 || got.TakeoverOffset != 333 {
		t.Fatalf("bootstrap round trip = %+v", got)
	}
	if _, err := decodeBootstrap([]byte("not gob at all")); !errors.Is(err, errProto) {
		t.Fatalf("decodeBootstrap(garbage) = %v, want protocol error", err)
	}
}
