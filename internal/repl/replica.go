package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hrdb/internal/backoff"
	"hrdb/internal/catalog"
	"hrdb/internal/storage"
)

// ReplicaOptions tune a Replica. The zero value gets defaults.
type ReplicaOptions struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReconnectBackoff is the base delay between stream attempts; the
	// actual delay is full-jitter exponential (see internal/backoff) up to
	// MaxBackoff. Default 50ms.
	ReconnectBackoff time.Duration
	// MaxBackoff caps the reconnect delay. Default 2s.
	MaxBackoff time.Duration
	// ID identifies this replica in elections: when two candidates are
	// equally caught up, the lexicographically smaller ID wins, which makes
	// the winner deterministic instead of a coin flip. AutoFailover
	// deployments must give every replica a distinct ID.
	ID string
	// Peers lists the client addresses of the other replicas. A campaign
	// probes them (the LAG verb) to find who is most caught up and whether
	// someone already won.
	Peers []string
	// AutoFailover starts the elector: after ElectionTimeout of stream
	// silence, a booted replica campaigns to promote itself.
	AutoFailover bool
	// ElectionTimeout is the heartbeat silence that triggers a campaign. It
	// must comfortably exceed the primary's HeartbeatInterval, or healthy
	// pauses read as death. Default 2s.
	ElectionTimeout time.Duration
	// PromoteDir, when set, makes promotion durable: the replica's applied
	// state is materialized as a storage.Store rooted there (snapshot plus
	// a fresh WAL lineage one epoch past the takeover point), writes go
	// through that store's WAL, and the promoted replica serves SNAP/REPL
	// to followers. Empty keeps the in-memory promotion of earlier
	// releases: writable, but nothing outlives the process.
	PromoteDir string
	// Advertise is the replication address other nodes should dial to
	// follow this replica once it is promoted; it is published through the
	// LAG payload so campaigning peers can retarget. SetAdvertise can fill
	// it in later, once the listener is actually up.
	Advertise string
}

func (o *ReplicaOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = 2 * time.Second
	}
}

// ErrReadOnlyReplica rejects mutations on a replica that has not been
// promoted.
var ErrReadOnlyReplica = errors.New("repl: replica is read-only (not promoted)")

// ErrReplicaClosed reports use of a closed replica.
var ErrReplicaClosed = errors.New("repl: replica closed")

// Replica follows a primary: it bootstraps from a SNAP snapshot, replays
// the shipped WAL stream into an in-memory catalog database, and keeps
// reconnecting (with resume) until closed or promoted. All methods are safe
// for concurrent use; the database it maintains is the one served to
// read-only sessions via ReplicaTarget.
//
// With AutoFailover, the replica also runs an elector: when the stream has
// been silent past the election timeout it campaigns — probing its peers,
// standing down for anyone better positioned (or, on a tie, with a smaller
// ID), retargeting to a peer that already won — and otherwise promotes
// itself under the next fencing term.
type Replica struct {
	opts ReplicaOptions

	mu          sync.Mutex
	addr        string // current upstream; elections retarget it
	id          string
	advertise   string
	db          *catalog.Database
	booted      bool     // db came from a snapshot (not the empty placeholder)
	needSnap    bool     // position rejected as stale (or upstream changed); re-bootstrap
	pos         position // applied position (always an out-of-bracket record boundary)
	highWater   position // primary's durable position, from SHIP/HB frames
	term        uint64   // highest fencing term seen (frames, bootstraps, elections)
	syncedAt    time.Time
	everSync    bool
	lastFrame   time.Time // last accepted frame or bootstrap: the election silence clock
	state       string    // "connecting" | "streaming" | "promoted" | "stopped"
	promoted    bool
	closed      bool
	conn        net.Conn // live stream connection, for severing on close/promote
	applied     uint64   // records applied across all connections
	nBootstraps int      // snapshot bootstraps performed
	store       *storage.Store
	prim        *Primary // replication source once durably promoted

	ctx         context.Context // canceled on Close/Promote: aborts sleeps and the elector
	cancel      context.CancelFunc
	done        chan struct{}
	electorDone chan struct{} // nil unless AutoFailover
}

// NewReplica creates a replica following the primary at addr and starts its
// streaming loop. Until the first bootstrap completes, the replica serves
// an empty database and reports unknown staleness.
func NewReplica(addr string, opts ReplicaOptions) *Replica {
	opts.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		addr:      addr,
		id:        opts.ID,
		advertise: opts.Advertise,
		opts:      opts,
		db:        catalog.New(),
		state:     "connecting",
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
	}
	setStateGauge(r.state)
	go r.run()
	if opts.AutoFailover {
		r.electorDone = make(chan struct{})
		go r.elector()
	}
	return r
}

// Database returns the replica's current database. The pointer is swapped
// on snapshot bootstrap, so callers must re-fetch it per statement rather
// than caching it (hql.Session already does).
func (r *Replica) Database() *catalog.Database {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// Store returns the durable store backing a promoted replica, or nil when
// the replica is unpromoted or was promoted without a PromoteDir.
func (r *Replica) Store() *storage.Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.store
}

// AppliedRecords returns the number of WAL records this replica has applied
// across all connections (bracket records count when their commit applies).
func (r *Replica) AppliedRecords() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Promoted reports whether the replica has been promoted.
func (r *Replica) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Term returns the highest fencing term this replica has seen.
func (r *Replica) Term() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.term
}

// SetAdvertise publishes the replication address other nodes should dial to
// follow this node once promoted (daemons call it after their repl listener
// is actually accepting).
func (r *Replica) SetAdvertise(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.advertise = addr
}

// SetPeers replaces the peer list election campaigns consult. Like
// SetAdvertise it solves a wiring-order problem: a peer's address is often
// only known once its listener is up, after this replica was created.
func (r *Replica) SetPeers(peers []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.opts.Peers = append([]string(nil), peers...)
}

// setStateLocked transitions the replica state and keeps the per-state
// gauge truthful. Callers hold r.mu.
func (r *Replica) setStateLocked(state string) {
	r.state = state
	setStateGauge(state)
}

// Status is a replica's full replication status: the Lag fields plus the
// failover identity (term, ID, and the address to follow it at).
type Status struct {
	Staleness time.Duration
	Epoch     uint64
	Offset    int64
	State     string
	Term      uint64
	ID        string
	// Source is where to stream from this node: the advertised replication
	// address once promoted, the upstream it follows otherwise.
	Source string
}

// Status reports the replica's replication status for the LAG verb, for
// lag-bounded routing, and for election probes.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Staleness: -1,
		Epoch:     r.pos.epoch,
		Offset:    r.pos.offset,
		State:     r.state,
		Term:      r.term,
		ID:        r.id,
		Source:    r.addr,
	}
	if r.promoted {
		// A promoted replica is the authoritative copy: nothing to lag behind.
		st.Staleness = 0
		st.Source = r.advertise
	} else if r.everSync {
		st.Staleness = time.Since(r.syncedAt)
	}
	return st
}

// Lag reports the replica's replication state for lag-bounded routing.
// Staleness is the age of the last moment the replica was provably caught
// up with the primary's durable position; negative means unknown (never
// synced, or not yet re-synced after a bootstrap).
func (r *Replica) Lag() (staleness time.Duration, epoch uint64, offset int64, state string) {
	st := r.Status()
	return st.Staleness, st.Epoch, st.Offset, st.State
}

// Promote stops following and flips the replica writable under the next
// fencing term. Promotion is manual failover — the caller has decided the
// old primary is gone. Whatever committed state the replica had applied is
// the new authoritative state; an unfinished transaction bracket in flight
// is discarded, exactly as a primary crash recovery would discard it.
func (r *Replica) Promote() error {
	r.mu.Lock()
	term := r.term + 1
	r.mu.Unlock()
	return r.promoteWithTerm(term)
}

// promoteWithTerm is promotion under an explicit fencing term (an election
// win carries max-seen-term+1; manual Promote uses own-term+1). With a
// PromoteDir the promotion is durable: the applied state is materialized as
// a store whose WAL lineage starts one epoch past the takeover point, so
// surviving followers parked in the old lineage re-bootstrap rather than
// resume into divergence. The old upstream is then told, best effort, that
// it has been deposed.
func (r *Replica) promoteWithTerm(term uint64) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrReplicaClosed
	}
	if r.promoted {
		r.mu.Unlock()
		return nil
	}
	if term <= r.term {
		term = r.term + 1
	}
	r.promoted = true
	r.term = term
	takeover := r.pos
	oldAddr := r.addr
	r.setStateLocked("promoted")
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	r.cancel()
	<-r.done

	if r.opts.PromoteDir != "" {
		spec := storage.SnapshotDatabase(r.Database())
		spec.LogEpoch = takeover.epoch + 1
		spec.PrimaryTerm = term
		spec.TakeoverEpoch, spec.TakeoverOffset = takeover.epoch, takeover.offset
		st, err := storage.Create(r.opts.PromoteDir, spec, storage.Options{})
		if err != nil {
			return fmt.Errorf("repl: durable promotion: %w", err)
		}
		r.mu.Lock()
		r.db = st.Database()
		r.store = st
		r.prim = NewPrimary(st, PrimaryOptions{})
		r.mu.Unlock()
	}
	metricPromotions.Inc()
	// Best effort: tell the deposed upstream directly, so it fences even if
	// no follower ever contacts it. Losing this race (or the old primary
	// being dead) is fine — the term checks catch it everywhere else.
	go fenceRemote(oldAddr, term, r.opts.DialTimeout)
	return nil
}

// Snapshot implements the server's ReplSource hook (structurally): a
// promoted replica serves bootstrap snapshots from its durable store so the
// rest of the fleet — including the deposed primary, rejoining — can follow
// it. Unpromoted (or promoted without a PromoteDir), there is no durable
// lineage to serve.
func (r *Replica) Snapshot() ([]byte, error) {
	r.mu.Lock()
	prim := r.prim
	r.mu.Unlock()
	if prim == nil {
		return nil, ErrReadOnlyReplica
	}
	return prim.Snapshot()
}

// ServeStream implements the server's ReplSource hook (structurally); see
// Snapshot.
func (r *Replica) ServeStream(br *bufio.Reader, bw *bufio.Writer, epoch uint64, offset int64, followerTerm uint64) error {
	r.mu.Lock()
	prim := r.prim
	r.mu.Unlock()
	if prim == nil {
		return writeStale(bw, "not promoted: no replication source here")
	}
	return prim.ServeStream(br, bw, epoch, offset, followerTerm)
}

// Close stops the replica (and, if it was durably promoted, closes its
// store). Idempotent.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		if r.electorDone != nil {
			<-r.electorDone
		}
		return nil
	}
	r.closed = true
	if !r.promoted {
		r.setStateLocked("stopped")
	}
	if r.conn != nil {
		r.conn.Close()
	}
	st := r.store
	r.mu.Unlock()
	r.cancel()
	<-r.done
	if r.electorDone != nil {
		<-r.electorDone
	}
	if st != nil {
		if err := st.Close(); err != nil && !errors.Is(err, storage.ErrStoreClosed) {
			return err
		}
	}
	return nil
}

func (r *Replica) stopping() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed || r.promoted
}

// run is the reconnect loop: stream until the connection fails, back off
// (full jitter, capped), retry. A stale rejection re-bootstraps immediately —
// waiting won't make a GC'd WAL segment reappear.
func (r *Replica) run() {
	defer close(r.done)
	pol := backoff.Policy{Base: r.opts.ReconnectBackoff, Max: r.opts.MaxBackoff}
	attempt := 0
	for !r.stopping() {
		err := r.streamOnce()
		if r.stopping() {
			return
		}
		r.mu.Lock()
		r.setStateLocked("connecting")
		r.mu.Unlock()
		metricReconnects.Inc()
		if errors.Is(err, errStale) {
			metricStaleRestarts.Inc()
			attempt = 0
			continue
		}
		if backoff.Sleep(r.ctx, pol.Delay(attempt, 0)) != nil {
			return
		}
		attempt++
	}
}

// retarget switches the replica to follow a newly promoted peer. The new
// primary's WAL lineage is disjoint from the old one, so the next stream
// attempt re-bootstraps; the silence clock restarts so the elector gives
// the new upstream a full timeout before judging it.
func (r *Replica) retarget(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.promoted || addr == "" || addr == r.addr {
		return
	}
	r.addr = addr
	r.needSnap = true
	r.lastFrame = time.Now()
	if r.conn != nil {
		r.conn.Close()
	}
	metricRetargets.Inc()
}

// elector campaigns for promotion whenever the stream goes quiet. Campaign
// timing is jittered (uniform in [ET/2, 3ET/2) on top of the timeout
// check) so replicas that lost the same primary at the same instant don't
// promote in lockstep.
func (r *Replica) elector() {
	defer close(r.electorDone)
	et := r.opts.ElectionTimeout
	for {
		d := et/2 + time.Duration(rand.Int63n(int64(et)))
		t := time.NewTimer(d)
		select {
		case <-r.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		if !r.quiet(et) {
			continue
		}
		r.campaign()
		if r.Promoted() {
			return
		}
	}
}

// quiet reports whether the replica is booted, unpromoted, and has heard
// nothing from its upstream for at least the election timeout. A replica
// that never booted has no state worth promoting; one that heard a frame
// recently has a live primary.
func (r *Replica) quiet(et time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.promoted || !r.booted {
		return false
	}
	return !r.lastFrame.IsZero() && time.Since(r.lastFrame) >= et
}

// campaign decides this replica's move after election-timeout silence:
// stand down if any reachable peer is better positioned (or equally
// positioned with a smaller ID — the deterministic tiebreak), retarget if a
// peer already won a term at or past ours, otherwise self-promote with a
// term one past the highest seen anywhere. Unreachable peers don't vote:
// in a partition, the reachable side elects from the candidates it can
// compare, and fencing terms resolve any collision when the partition
// heals.
func (r *Replica) campaign() {
	r.mu.Lock()
	myPos, myTerm, myID := r.pos, r.term, r.id
	peers := r.opts.Peers
	r.mu.Unlock()
	metricElections.Inc()
	maxTerm := myTerm
	for _, peer := range peers {
		st, err := probePeer(peer, r.opts.DialTimeout)
		if err != nil {
			continue
		}
		if st.Term > maxTerm {
			maxTerm = st.Term
		}
		if st.State == "promoted" && st.Term >= myTerm {
			r.retarget(st.Source)
			return
		}
		peerPos := position{epoch: st.Epoch, offset: st.Offset}
		if myPos.before(peerPos) || (peerPos == myPos && st.ID != "" && st.ID < myID) {
			return
		}
	}
	// Probing took time; a primary heard from meanwhile cancels the win.
	if !r.quiet(r.opts.ElectionTimeout) {
		return
	}
	_ = r.promoteWithTerm(maxTerm + 1)
}

// streamOnce runs one connection's worth of replication: dial, bootstrap if
// needed, request the stream at the resume position, and apply frames until
// something breaks.
func (r *Replica) streamOnce() error {
	r.mu.Lock()
	addr := r.addr
	r.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	r.mu.Lock()
	if r.closed || r.promoted {
		r.mu.Unlock()
		return ErrReplicaClosed
	}
	r.conn = conn
	needSnap := !r.booted || r.needSnap
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	if needSnap {
		if err := r.bootstrap(br, bw); err != nil {
			return err
		}
	}

	r.mu.Lock()
	db, start, term := r.db, r.pos, r.term
	r.setStateLocked("streaming")
	r.mu.Unlock()

	// The REPL line announces our highest term: a deposed primary answering
	// it learns of its deposition and fences itself.
	if _, err := fmt.Fprintf(bw, "REPL %d %d %d\n", start.epoch, start.offset, term); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return r.applyStream(br, bw, db, start)
}

// bootstrap fetches a SNAP snapshot over the open connection and installs
// it as the replica's database and resume position.
func (r *Replica) bootstrap(br *bufio.Reader, bw *bufio.Writer) error {
	begin := time.Now()
	if _, err := fmt.Fprintln(bw, "SNAP"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	ok, code, payload, err := readResponseFrame(br, maxSnapshotBytes)
	if err != nil {
		return err
	}
	if !ok {
		if code == "stale" {
			// The upstream is itself an unpromoted replica (mid-election
			// retarget raced the winner's promotion); try again later.
			return fmt.Errorf("repl: SNAP refused: %s", payload)
		}
		return fmt.Errorf("repl: SNAP refused: %s: %s", code, payload)
	}
	boot, err := decodeBootstrap([]byte(payload))
	if err != nil {
		return err
	}
	r.mu.Lock()
	if boot.Term < r.term {
		cur := r.term
		r.mu.Unlock()
		return fmt.Errorf("repl: snapshot from deposed primary (term %d < %d)", boot.Term, cur)
	}
	db, err := storage.BuildDatabase(boot.Spec)
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("repl: bad snapshot: %w", err)
	}
	r.db = db
	r.booted = true
	r.needSnap = false
	r.term = boot.Term
	r.pos = position{epoch: boot.Epoch, offset: boot.Offset}
	r.highWater = r.pos
	r.everSync = false // not synced until the stream proves it
	r.lastFrame = time.Now()
	r.nBootstraps++
	r.mu.Unlock()
	metricBootstraps.Inc()
	metricBootstrapNS.ObserveDuration(time.Since(begin))
	return nil
}

// adoptFrameTerm folds one stream frame's term into the replica: higher
// terms are adopted, the silence clock restarts, and frames from a term
// below the highest seen are refused — a deposed primary must not keep
// feeding us history the new one will contradict.
func (r *Replica) adoptFrameTerm(term uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if term < r.term {
		return fmt.Errorf("repl: frame from deposed primary (term %d < %d)", term, r.term)
	}
	r.term = term
	r.lastFrame = time.Now()
	return nil
}

// applyStream consumes stream frames on one connection. start is the
// position the primary was asked to resume from; every byte that arrives is
// accounted against it, so any gap or overlap in what the primary sends is
// detected as a hard desync rather than silently applied.
func (r *Replica) applyStream(br *bufio.Reader, bw *bufio.Writer, db *catalog.Database, start position) error {
	applier := storage.NewApplier(db)
	dec := storage.NewStreamDecoder()
	feed := start // position of the next byte expected from the wire
	// pending counts records fed to the applier but not yet covered by the
	// resume position: a reconnect re-feeds them (they were inside an open
	// bracket), so they count toward r.applied only when the resume
	// position moves past them — exactly-once accounting.
	var pending uint64

	for {
		frame, err := readStreamFrame(br)
		if err != nil {
			return err
		}
		if frame.kind != "ERR" {
			if err := r.adoptFrameTerm(frame.term); err != nil {
				return err
			}
		}
		switch frame.kind {
		case "SHIP":
			if frame.pos != feed {
				return fmt.Errorf("%w: SHIP at %d/%d, expected %d/%d",
					errProto, frame.pos.epoch, frame.pos.offset, feed.epoch, feed.offset)
			}
			dec.Feed(frame.payload)
			feed.offset += int64(len(frame.payload))
			if err := r.drain(applier, dec, start, &pending); err != nil {
				return err
			}
			r.observe(feed, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "HB":
			if frame.pos.epoch == feed.epoch && frame.pos.offset < feed.offset {
				return fmt.Errorf("%w: HB at %d/%d behind stream position %d/%d",
					errProto, frame.pos.epoch, frame.pos.offset, feed.epoch, feed.offset)
			}
			r.observe(frame.pos, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "ROTATE":
			// A rotation is only legal at a clean point: no partial frame
			// buffered, no open transaction bracket (the primary never
			// checkpoints mid-bracket, so anything else is a desync).
			if dec.Buffered() != 0 || applier.InTx() {
				return fmt.Errorf("%w: ROTATE to epoch %d mid-record", errProto, frame.pos.epoch)
			}
			start = position{epoch: frame.pos.epoch}
			feed = start
			dec = storage.NewStreamDecoder()
			r.mu.Lock()
			r.pos = start
			if !r.highWater.before(start) {
				// Rotation supersedes any high-water mark from the old epoch.
				r.highWater = start
			}
			r.mu.Unlock()
			r.observe(start, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "ERR":
			if frame.code == "stale" {
				r.mu.Lock()
				r.needSnap = true
				r.mu.Unlock()
				return fmt.Errorf("%w: %s", errStale, frame.msg)
			}
			return fmt.Errorf("%w: stream error %s: %s", errProto, frame.code, frame.msg)
		}
	}
}

// drain applies every complete record the decoder holds. The resume
// position advances only at out-of-bracket boundaries: after draining, if
// no bracket is open, everything consumed so far is durable state the
// stream may resume after, and the pending records become part of the
// applied count.
func (r *Replica) drain(applier *storage.Applier, dec *storage.StreamDecoder, start position, pending *uint64) error {
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := applier.Apply(rec); err != nil {
			return fmt.Errorf("repl: apply %s: %w", rec.Op, err)
		}
		*pending++
	}
	if !applier.InTx() {
		resume := position{epoch: start.epoch, offset: start.offset + dec.Consumed()}
		r.mu.Lock()
		if r.pos.before(resume) {
			metricAppliedBytes.Add(uint64(resume.offset - r.pos.offset))
			r.applied += *pending
			metricAppliedRecs.Add(*pending)
			r.pos = resume
		}
		r.mu.Unlock()
		*pending = 0
	}
	return nil
}

// observe folds a frame's durability information into the lag accounting:
// durable high-water, catch-up detection, and the lag gauges. The byte-lag
// gauge distinguishes unknown (-1: the high-water mark is in another epoch,
// so no byte distance exists) from caught up (0) — conflating them made an
// arbitrarily stale replica indistinguishable from a current one.
func (r *Replica) observe(durable position, applier *storage.Applier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.highWater.before(durable) {
		r.highWater = durable
	}
	if !r.pos.before(r.highWater) {
		// Applied everything the primary has made durable: caught up.
		r.syncedAt = time.Now()
		r.everSync = true
		metricLagBytes.Set(0)
	} else if r.highWater.epoch == r.pos.epoch {
		metricLagBytes.Set(r.highWater.offset - r.pos.offset)
	} else {
		metricLagBytes.Set(-1)
	}
	metricLagRecords.Set(int64(applier.Pending()))
}

// ack reports the current resume position (and our term) to the primary.
func (r *Replica) ack(bw *bufio.Writer) error {
	r.mu.Lock()
	pos, term := r.pos, r.term
	r.mu.Unlock()
	return writeAck(bw, term, pos)
}
