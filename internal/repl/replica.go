package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/storage"
)

// ReplicaOptions tune a Replica. The zero value gets defaults.
type ReplicaOptions struct {
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReconnectBackoff is the initial delay between stream attempts; it
	// doubles per consecutive failure up to MaxBackoff. Default 50ms.
	ReconnectBackoff time.Duration
	// MaxBackoff caps the reconnect delay. Default 2s.
	MaxBackoff time.Duration
}

func (o *ReplicaOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReconnectBackoff <= 0 {
		o.ReconnectBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
}

// ErrReadOnlyReplica rejects mutations on a replica that has not been
// promoted.
var ErrReadOnlyReplica = errors.New("repl: replica is read-only (not promoted)")

// ErrReplicaClosed reports use of a closed replica.
var ErrReplicaClosed = errors.New("repl: replica closed")

// Replica follows a primary: it bootstraps from a SNAP snapshot, replays
// the shipped WAL stream into an in-memory catalog database, and keeps
// reconnecting (with resume) until closed or promoted. All methods are safe
// for concurrent use; the database it maintains is the one served to
// read-only sessions via ReplicaTarget.
type Replica struct {
	addr string
	opts ReplicaOptions

	mu          sync.Mutex
	db          *catalog.Database
	booted      bool     // db came from a snapshot (not the empty placeholder)
	needSnap    bool     // position rejected as stale; re-bootstrap
	pos         position // applied position (always an out-of-bracket record boundary)
	highWater   position // primary's durable position, from SHIP/HB frames
	syncedAt    time.Time
	everSync    bool
	state       string // "connecting" | "streaming" | "promoted" | "stopped"
	promoted    bool
	closed      bool
	conn        net.Conn // live stream connection, for severing on close/promote
	applied     uint64   // records applied across all connections
	nBootstraps int      // snapshot bootstraps performed

	done chan struct{}
}

// NewReplica creates a replica following the primary at addr and starts its
// streaming loop. Until the first bootstrap completes, the replica serves
// an empty database and reports unknown staleness.
func NewReplica(addr string, opts ReplicaOptions) *Replica {
	opts.defaults()
	r := &Replica{
		addr:  addr,
		opts:  opts,
		db:    catalog.New(),
		state: "connecting",
		done:  make(chan struct{}),
	}
	go r.run()
	return r
}

// Database returns the replica's current database. The pointer is swapped
// on snapshot bootstrap, so callers must re-fetch it per statement rather
// than caching it (hql.Session already does).
func (r *Replica) Database() *catalog.Database {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// AppliedRecords returns the number of WAL records this replica has applied
// across all connections (bracket records count when their commit applies).
func (r *Replica) AppliedRecords() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Promoted reports whether the replica has been promoted.
func (r *Replica) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Lag reports the replica's replication state for the LAG verb and for
// lag-bounded routing. Staleness is the age of the last moment the replica
// was provably caught up with the primary's durable position; negative
// means unknown (never synced, or not yet re-synced after a bootstrap).
func (r *Replica) Lag() (staleness time.Duration, epoch uint64, offset int64, state string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	staleness = -1
	if r.promoted {
		// A promoted replica is the authoritative copy: nothing to lag behind.
		staleness = 0
	} else if r.everSync {
		staleness = time.Since(r.syncedAt)
	}
	return staleness, r.pos.epoch, r.pos.offset, r.state
}

// Promote stops following and flips the replica writable: the streaming
// loop is severed and drained, then ReplicaTarget begins accepting
// mutations. Promotion is manual failover — the caller has decided the old
// primary is gone. Whatever committed state the replica had applied is the
// new authoritative state; an unfinished transaction bracket in flight is
// discarded, exactly as a primary crash recovery would discard it.
func (r *Replica) Promote() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrReplicaClosed
	}
	if r.promoted {
		r.mu.Unlock()
		return nil
	}
	r.promoted = true
	r.state = "promoted"
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	<-r.done
	return nil
}

// Close stops the replica. Idempotent.
func (r *Replica) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	if !r.promoted {
		r.state = "stopped"
	}
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	<-r.done
	return nil
}

func (r *Replica) stopping() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed || r.promoted
}

// run is the reconnect loop: stream until the connection fails, back off
// (doubling, capped), retry. A stale rejection re-bootstraps immediately —
// waiting won't make a GC'd WAL segment reappear.
func (r *Replica) run() {
	defer close(r.done)
	backoff := r.opts.ReconnectBackoff
	for !r.stopping() {
		err := r.streamOnce()
		if r.stopping() {
			return
		}
		r.mu.Lock()
		r.state = "connecting"
		r.mu.Unlock()
		metricReconnects.Inc()
		if errors.Is(err, errStale) {
			metricStaleRestarts.Inc()
			backoff = r.opts.ReconnectBackoff
			continue
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// streamOnce runs one connection's worth of replication: dial, bootstrap if
// needed, request the stream at the resume position, and apply frames until
// something breaks.
func (r *Replica) streamOnce() error {
	conn, err := net.DialTimeout("tcp", r.addr, r.opts.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	r.mu.Lock()
	if r.closed || r.promoted {
		r.mu.Unlock()
		return ErrReplicaClosed
	}
	r.conn = conn
	needSnap := !r.booted || r.needSnap
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	if needSnap {
		if err := r.bootstrap(br, bw); err != nil {
			return err
		}
	}

	r.mu.Lock()
	db, start := r.db, r.pos
	r.state = "streaming"
	r.mu.Unlock()

	if _, err := fmt.Fprintf(bw, "REPL %d %d\n", start.epoch, start.offset); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return r.applyStream(br, bw, db, start)
}

// bootstrap fetches a SNAP snapshot over the open connection and installs
// it as the replica's database and resume position.
func (r *Replica) bootstrap(br *bufio.Reader, bw *bufio.Writer) error {
	begin := time.Now()
	if _, err := fmt.Fprintln(bw, "SNAP"); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	ok, code, payload, err := readResponseFrame(br, maxSnapshotBytes)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("repl: SNAP refused: %s: %s", code, payload)
	}
	boot, err := decodeBootstrap([]byte(payload))
	if err != nil {
		return err
	}
	db, err := storage.BuildDatabase(boot.Spec)
	if err != nil {
		return fmt.Errorf("repl: bad snapshot: %w", err)
	}
	r.mu.Lock()
	r.db = db
	r.booted = true
	r.needSnap = false
	r.pos = position{epoch: boot.Epoch, offset: boot.Offset}
	r.highWater = r.pos
	r.everSync = false // not synced until the stream proves it
	r.nBootstraps++
	r.mu.Unlock()
	metricBootstraps.Inc()
	metricBootstrapNS.ObserveDuration(time.Since(begin))
	return nil
}

// applyStream consumes stream frames on one connection. start is the
// position the primary was asked to resume from; every byte that arrives is
// accounted against it, so any gap or overlap in what the primary sends is
// detected as a hard desync rather than silently applied.
func (r *Replica) applyStream(br *bufio.Reader, bw *bufio.Writer, db *catalog.Database, start position) error {
	applier := storage.NewApplier(db)
	dec := storage.NewStreamDecoder()
	feed := start // position of the next byte expected from the wire
	// pending counts records fed to the applier but not yet covered by the
	// resume position: a reconnect re-feeds them (they were inside an open
	// bracket), so they count toward r.applied only when the resume
	// position moves past them — exactly-once accounting.
	var pending uint64

	for {
		frame, err := readStreamFrame(br)
		if err != nil {
			return err
		}
		switch frame.kind {
		case "SHIP":
			if frame.pos != feed {
				return fmt.Errorf("%w: SHIP at %d/%d, expected %d/%d",
					errProto, frame.pos.epoch, frame.pos.offset, feed.epoch, feed.offset)
			}
			dec.Feed(frame.payload)
			feed.offset += int64(len(frame.payload))
			if err := r.drain(applier, dec, start, &pending); err != nil {
				return err
			}
			r.observe(feed, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "HB":
			if frame.pos.epoch == feed.epoch && frame.pos.offset < feed.offset {
				return fmt.Errorf("%w: HB at %d/%d behind stream position %d/%d",
					errProto, frame.pos.epoch, frame.pos.offset, feed.epoch, feed.offset)
			}
			r.observe(frame.pos, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "ROTATE":
			// A rotation is only legal at a clean point: no partial frame
			// buffered, no open transaction bracket (the primary never
			// checkpoints mid-bracket, so anything else is a desync).
			if dec.Buffered() != 0 || applier.InTx() {
				return fmt.Errorf("%w: ROTATE to epoch %d mid-record", errProto, frame.pos.epoch)
			}
			start = position{epoch: frame.pos.epoch}
			feed = start
			dec = storage.NewStreamDecoder()
			r.mu.Lock()
			r.pos = start
			if !r.highWater.before(start) {
				// Rotation supersedes any high-water mark from the old epoch.
				r.highWater = start
			}
			r.mu.Unlock()
			r.observe(start, applier)
			if err := r.ack(bw); err != nil {
				return err
			}
		case "ERR":
			if frame.code == "stale" {
				r.mu.Lock()
				r.needSnap = true
				r.mu.Unlock()
				return fmt.Errorf("%w: %s", errStale, frame.msg)
			}
			return fmt.Errorf("%w: stream error %s: %s", errProto, frame.code, frame.msg)
		}
	}
}

// drain applies every complete record the decoder holds. The resume
// position advances only at out-of-bracket boundaries: after draining, if
// no bracket is open, everything consumed so far is durable state the
// stream may resume after, and the pending records become part of the
// applied count.
func (r *Replica) drain(applier *storage.Applier, dec *storage.StreamDecoder, start position, pending *uint64) error {
	for {
		rec, ok, err := dec.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := applier.Apply(rec); err != nil {
			return fmt.Errorf("repl: apply %s: %w", rec.Op, err)
		}
		*pending++
	}
	if !applier.InTx() {
		resume := position{epoch: start.epoch, offset: start.offset + dec.Consumed()}
		r.mu.Lock()
		if r.pos.before(resume) {
			metricAppliedBytes.Add(uint64(resume.offset - r.pos.offset))
			r.applied += *pending
			metricAppliedRecs.Add(*pending)
			r.pos = resume
		}
		r.mu.Unlock()
		*pending = 0
	}
	return nil
}

// observe folds a frame's durability information into the lag accounting:
// durable high-water, catch-up detection, and the lag gauges.
func (r *Replica) observe(durable position, applier *storage.Applier) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.highWater.before(durable) {
		r.highWater = durable
	}
	if !r.pos.before(r.highWater) {
		// Applied everything the primary has made durable: caught up.
		r.syncedAt = time.Now()
		r.everSync = true
		metricLagBytes.Set(0)
	} else if r.highWater.epoch == r.pos.epoch {
		metricLagBytes.Set(r.highWater.offset - r.pos.offset)
	}
	metricLagRecords.Set(int64(applier.Pending()))
}

// ack reports the current resume position to the primary.
func (r *Replica) ack(bw *bufio.Writer) error {
	r.mu.Lock()
	pos := r.pos
	r.mu.Unlock()
	return writeAck(bw, pos)
}
