package repl

import "hrdb/internal/obs"

// Replication metrics, on the obs default registry. Process-wide: a process
// hosting both a primary and a replica (tests do) feeds both halves.
var (
	// Primary side: bytes shipped to followers and ACKs received, plus the
	// most recently acknowledged position across all followers.
	metricShippedBytes = obs.Default().Counter("hrdb_repl_shipped_bytes_total")
	metricAcks         = obs.Default().Counter("hrdb_repl_acks_total")
	metricAckedEpoch   = obs.Default().Gauge("hrdb_repl_acked_epoch")
	metricAckedOffset  = obs.Default().Gauge("hrdb_repl_acked_offset")

	// Replica side: stream lag in bytes (durable high-water minus applied
	// offset; 0 when caught up) and in records (buffered inside an open
	// transaction bracket), applied volume, bootstraps, and reconnects.
	metricLagBytes      = obs.Default().Gauge("hrdb_repl_lag_bytes")
	metricLagRecords    = obs.Default().Gauge("hrdb_repl_lag_records")
	metricAppliedRecs   = obs.Default().Counter("hrdb_repl_applied_records_total")
	metricAppliedBytes  = obs.Default().Counter("hrdb_repl_applied_bytes_total")
	metricBootstraps    = obs.Default().Counter("hrdb_repl_bootstraps_total")
	metricBootstrapNS   = obs.Default().Histogram("hrdb_repl_snapshot_bootstrap_duration_ns")
	metricReconnects    = obs.Default().Counter("hrdb_repl_reconnects_total")
	metricStaleRestarts = obs.Default().Counter("hrdb_repl_stale_restarts_total")
)
