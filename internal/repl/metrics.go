package repl

import "hrdb/internal/obs"

// Replication metrics, on the obs default registry. Process-wide: a process
// hosting both a primary and a replica (tests do) feeds both halves.
var (
	// Primary side: bytes shipped to followers and ACKs received, plus the
	// most recently acknowledged position across all followers.
	metricShippedBytes = obs.Default().Counter("hrdb_repl_shipped_bytes_total")
	metricAcks         = obs.Default().Counter("hrdb_repl_acks_total")
	metricAckedEpoch   = obs.Default().Gauge("hrdb_repl_acked_epoch")
	metricAckedOffset  = obs.Default().Gauge("hrdb_repl_acked_offset")

	// Replica side: stream lag in bytes (durable high-water minus applied
	// offset; 0 when caught up) and in records (buffered inside an open
	// transaction bracket), applied volume, bootstraps, and reconnects.
	metricLagBytes      = obs.Default().Gauge("hrdb_repl_lag_bytes")
	metricLagRecords    = obs.Default().Gauge("hrdb_repl_lag_records")
	metricAppliedRecs   = obs.Default().Counter("hrdb_repl_applied_records_total")
	metricAppliedBytes  = obs.Default().Counter("hrdb_repl_applied_bytes_total")
	metricBootstraps    = obs.Default().Counter("hrdb_repl_bootstraps_total")
	metricBootstrapNS   = obs.Default().Histogram("hrdb_repl_snapshot_bootstrap_duration_ns")
	metricReconnects    = obs.Default().Counter("hrdb_repl_reconnects_total")
	metricStaleRestarts = obs.Default().Counter("hrdb_repl_stale_restarts_total")

	// Failover: elections campaigned, promotions won (manual or elected),
	// and retargets to a peer that won instead.
	metricElections  = obs.Default().Counter("hrdb_repl_elections_total")
	metricPromotions = obs.Default().Counter("hrdb_repl_promotions_total")
	metricRetargets  = obs.Default().Counter("hrdb_repl_retargets_total")

	// Rejoin: bytes of committed-but-unreplicated WAL suffix preserved to
	// quarantine sidecars during deposed-primary demotion.
	metricQuarantinedBytes = obs.Default().Counter("hrdb_repl_quarantined_bytes_total")
)

// replicaStateGauges is one 0/1 gauge per replica lifecycle state,
// hrdb_repl_replica_state{state=...}. Exactly one is 1 at a time, which
// lets dashboards tell "caught up" from "not even connected" — the bare
// lag-bytes gauge cannot (0 and unknown both used to render as 0).
var replicaStateGauges = func() map[string]*obs.Gauge {
	m := make(map[string]*obs.Gauge)
	for _, s := range []string{"connecting", "streaming", "promoted", "stopped"} {
		m[s] = obs.Default().Gauge("hrdb_repl_replica_state", obs.Label{Key: "state", Value: s})
	}
	return m
}()

// setStateGauge flips the per-state gauges so exactly the current state
// reads 1.
func setStateGauge(state string) {
	for s, g := range replicaStateGauges {
		if s == state {
			g.Set(1)
		} else {
			g.Set(0)
		}
	}
}
