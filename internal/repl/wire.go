package repl

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hrdb/internal/storage"
)

// Wire framing of the replication stream. A follower opens an ordinary
// protocol connection and sends `REPL <epoch> <offset> [term]`; from then
// on the connection belongs to the stream:
//
//	primary → follower:
//	  SHIP <term> <epoch> <offset> <n>\n<n raw WAL bytes>\n   chunk at (epoch, offset)
//	  HB <term> <epoch> <offset>\n                            durable high-water heartbeat
//	  ROTATE <term> <epoch>\n                                 continue at (epoch, 0)
//	  ERR stale <retry_ms> <n>\n<msg>\n                       position unservable; SNAP again
//
//	follower → primary (same connection):
//	  ACK <term> <epoch> <offset>\n                           durable applied position
//
// Every frame leads with the sender's primary fencing term. A follower
// refuses frames carrying a term below the highest it has seen (a deposed
// primary cannot keep feeding it), and adopts higher terms as they appear.
// A primary contacted by a follower announcing a higher term (the REPL
// line's optional third field) knows it has been deposed and fences itself.
// Pre-term peers are interoperable: a REPL line without the term field and
// term-less frame parses are rejected only where stated.
//
// SHIP payloads are raw WAL frame bytes and split without regard for frame
// boundaries; the follower reassembles them with storage.StreamDecoder.
// Offsets in SHIP/HB/ACK are absolute byte offsets within the named
// epoch's WAL. ACK offsets only ever name record boundaries outside
// transaction brackets, which is what makes reconnect-with-resume
// duplicate-free: the primary restarts the stream exactly there.
//
// The bootstrap payload (the SNAP verb's OK frame) is a gob-encoded
// snapshot: the database spec plus the position replaying the stream from
// which reproduces the primary exactly, the primary's fencing term, and —
// when the primary was itself promoted from a replica — the takeover
// divergence point a deposed predecessor needs for rejoin.

// errStale is the follower-side sentinel for an ERR stale stream frame.
var errStale = errors.New("repl: position superseded by a checkpoint; snapshot re-bootstrap required")

// errProto reports a malformed stream or response frame.
var errProto = errors.New("repl: protocol error")

// maxShipChunk bounds one SHIP payload in both directions: the primary
// never ships more per frame, and the follower rejects announced lengths
// beyond it.
const maxShipChunk = 1 << 20

// maxSnapshotBytes bounds a SNAP bootstrap payload on the follower side.
const maxSnapshotBytes = 1 << 30

// position is a global replication position.
type position struct {
	epoch  uint64
	offset int64
}

// before reports strict stream order.
func (p position) before(q position) bool {
	return p.epoch < q.epoch || (p.epoch == q.epoch && p.offset < q.offset)
}

// bootstrap is the SNAP payload. Term and the takeover fields were added
// for failover; gob leaves them zero when decoding a pre-term payload.
type bootstrap struct {
	Spec   storage.DatabaseSpec
	Epoch  uint64
	Offset int64
	// Term is the primary's fencing term at snapshot time.
	Term uint64
	// TakeoverEpoch/TakeoverOffset name the divergence point if this
	// primary was promoted from a replica: the position (in the previous
	// primary's epoch numbering) up to which the promoting replica had
	// applied. Zero when the primary was never promoted.
	TakeoverEpoch  uint64
	TakeoverOffset int64
}

// encodeBootstrap gob-encodes a bootstrap payload.
func encodeBootstrap(b bootstrap) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeBootstrap decodes a SNAP payload.
func decodeBootstrap(p []byte) (bootstrap, error) {
	var b bootstrap
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&b); err != nil {
		return bootstrap{}, fmt.Errorf("%w: bad bootstrap payload: %v", errProto, err)
	}
	return b, nil
}

// writeShip emits one SHIP frame and flushes.
func writeShip(w *bufio.Writer, term uint64, pos position, chunk []byte) error {
	if _, err := fmt.Fprintf(w, "SHIP %d %d %d %d\n", term, pos.epoch, pos.offset, len(chunk)); err != nil {
		return err
	}
	if _, err := w.Write(chunk); err != nil {
		return err
	}
	if err := w.WriteByte('\n'); err != nil {
		return err
	}
	return w.Flush()
}

// writeHB emits one heartbeat frame and flushes.
func writeHB(w *bufio.Writer, term uint64, pos position) error {
	if _, err := fmt.Fprintf(w, "HB %d %d %d\n", term, pos.epoch, pos.offset); err != nil {
		return err
	}
	return w.Flush()
}

// writeRotate emits one ROTATE frame and flushes.
func writeRotate(w *bufio.Writer, term uint64, epoch uint64) error {
	if _, err := fmt.Fprintf(w, "ROTATE %d %d\n", term, epoch); err != nil {
		return err
	}
	return w.Flush()
}

// writeStale emits the stale error frame (the wire protocol's standard ERR
// framing with code "stale") and flushes.
func writeStale(w *bufio.Writer, msg string) error {
	if _, err := fmt.Fprintf(w, "ERR stale 0 %d\n%s\n", len(msg), msg); err != nil {
		return err
	}
	return w.Flush()
}

// writeAck emits one follower ACK line and flushes.
func writeAck(w *bufio.Writer, term uint64, pos position) error {
	if _, err := fmt.Fprintf(w, "ACK %d %d %d\n", term, pos.epoch, pos.offset); err != nil {
		return err
	}
	return w.Flush()
}

// readAck parses one follower ACK line.
func readAck(br *bufio.Reader) (uint64, position, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, position{}, err
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) != 4 || fields[0] != "ACK" {
		return 0, position{}, fmt.Errorf("%w: bad ack line %q", errProto, line)
	}
	term, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, position{}, fmt.Errorf("%w: bad ack term %q", errProto, fields[1])
	}
	epoch, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return 0, position{}, fmt.Errorf("%w: bad ack epoch %q", errProto, fields[2])
	}
	off, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil || off < 0 {
		return 0, position{}, fmt.Errorf("%w: bad ack offset %q", errProto, fields[3])
	}
	return term, position{epoch: epoch, offset: off}, nil
}

// streamFrame is one decoded primary→follower frame.
type streamFrame struct {
	kind    string // "SHIP" | "HB" | "ROTATE" | "ERR"
	term    uint64 // sender's fencing term (SHIP/HB/ROTATE)
	pos     position
	payload []byte // SHIP only
	code    string // ERR only
	msg     string // ERR only
}

// readStreamFrame decodes one stream frame (follower side).
func readStreamFrame(br *bufio.Reader) (streamFrame, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return streamFrame{}, err
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	if len(fields) == 0 {
		return streamFrame{}, fmt.Errorf("%w: empty stream line", errProto)
	}
	parseU64 := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
	parseI64 := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err == nil && v < 0 {
			err = fmt.Errorf("negative")
		}
		return v, err
	}
	switch fields[0] {
	case "SHIP":
		if len(fields) != 5 {
			return streamFrame{}, fmt.Errorf("%w: bad SHIP line %q", errProto, line)
		}
		term, err0 := parseU64(fields[1])
		epoch, err1 := parseU64(fields[2])
		off, err2 := parseI64(fields[3])
		n, err3 := parseI64(fields[4])
		if err0 != nil || err1 != nil || err2 != nil || err3 != nil || n > maxShipChunk {
			return streamFrame{}, fmt.Errorf("%w: bad SHIP header %q", errProto, line)
		}
		payload := make([]byte, n+1)
		if _, err := io.ReadFull(br, payload); err != nil {
			return streamFrame{}, err
		}
		if payload[n] != '\n' {
			return streamFrame{}, fmt.Errorf("%w: missing SHIP terminator", errProto)
		}
		return streamFrame{kind: "SHIP", term: term, pos: position{epoch, off}, payload: payload[:n]}, nil
	case "HB":
		if len(fields) != 4 {
			return streamFrame{}, fmt.Errorf("%w: bad HB line %q", errProto, line)
		}
		term, err0 := parseU64(fields[1])
		epoch, err1 := parseU64(fields[2])
		off, err2 := parseI64(fields[3])
		if err0 != nil || err1 != nil || err2 != nil {
			return streamFrame{}, fmt.Errorf("%w: bad HB header %q", errProto, line)
		}
		return streamFrame{kind: "HB", term: term, pos: position{epoch, off}}, nil
	case "ROTATE":
		if len(fields) != 3 {
			return streamFrame{}, fmt.Errorf("%w: bad ROTATE line %q", errProto, line)
		}
		term, err0 := parseU64(fields[1])
		epoch, err := parseU64(fields[2])
		if err0 != nil || err != nil {
			return streamFrame{}, fmt.Errorf("%w: bad ROTATE line %q", errProto, line)
		}
		return streamFrame{kind: "ROTATE", term: term, pos: position{epoch: epoch}}, nil
	case "ERR":
		// Standard ERR framing: ERR <code> <retry_ms> <n>\n<msg>\n
		if len(fields) != 4 {
			return streamFrame{}, fmt.Errorf("%w: bad ERR line %q", errProto, line)
		}
		n, err := parseI64(fields[3])
		if err != nil || n > maxShipChunk {
			return streamFrame{}, fmt.Errorf("%w: bad ERR length %q", errProto, fields[3])
		}
		msg := make([]byte, n+1)
		if _, err := io.ReadFull(br, msg); err != nil {
			return streamFrame{}, err
		}
		return streamFrame{kind: "ERR", code: fields[1], msg: string(msg[:n])}, nil
	default:
		return streamFrame{}, fmt.Errorf("%w: unknown stream frame %q", errProto, fields[0])
	}
}

// readResponseFrame decodes one standard OK/ERR response frame (the
// follower's view of SNAP replies). It mirrors the server protocol's
// response framing without importing the server package: the replication
// layer deliberately speaks the wire contract, not the implementation.
func readResponseFrame(br *bufio.Reader, maxBytes int) (ok bool, code, payload string, err error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return false, "", "", err
	}
	fields := strings.Fields(strings.TrimRight(line, "\r\n"))
	read := func(lenField string) (string, error) {
		n, err := strconv.ParseInt(lenField, 10, 64)
		if err != nil || n < 0 || n > int64(maxBytes) {
			return "", fmt.Errorf("%w: bad response length %q", errProto, lenField)
		}
		p := make([]byte, n+1)
		if _, err := io.ReadFull(br, p); err != nil {
			return "", err
		}
		if p[n] != '\n' {
			return "", fmt.Errorf("%w: missing response terminator", errProto)
		}
		return string(p[:n]), nil
	}
	switch {
	case len(fields) == 2 && fields[0] == "OK":
		payload, err := read(fields[1])
		return true, "", payload, err
	case len(fields) == 4 && fields[0] == "ERR":
		payload, err := read(fields[3])
		return false, fields[1], payload, err
	default:
		return false, "", "", fmt.Errorf("%w: bad response line %q", errProto, line)
	}
}
