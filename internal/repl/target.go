package repl

import (
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
)

// ReplicaTarget adapts a Replica to hql.Target so a server can run
// read-only sessions against it. Mutations fail with ErrReadOnlyReplica
// until the replica is promoted, after which they execute directly against
// the replica's in-memory database — the promoted replica is the new
// authoritative copy.
//
// Database() re-fetches the replica's current database on every call
// (hql.Session does the same per statement), so a snapshot re-bootstrap
// swapping the database pointer takes effect at the next statement.
type ReplicaTarget struct{ R *Replica }

// Database returns the replica's current database.
func (t ReplicaTarget) Database() *catalog.Database { return t.R.Database() }

// writable returns the delegate target when promoted, or nil. A durably
// promoted replica writes through its store (WAL first, fencing enforced);
// one promoted without a PromoteDir mutates its in-memory database.
func (t ReplicaTarget) writable() (hql.Target, bool) {
	if !t.R.Promoted() {
		return nil, false
	}
	if st := t.R.Store(); st != nil {
		return st, true
	}
	return hql.MemTarget{DB: t.R.Database()}, true
}

// CreateHierarchy implements hql.Target.
func (t ReplicaTarget) CreateHierarchy(domain string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.CreateHierarchy(domain)
}

// AddClass implements hql.Target.
func (t ReplicaTarget) AddClass(domain, name string, parents ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.AddClass(domain, name, parents...)
}

// AddInstance implements hql.Target.
func (t ReplicaTarget) AddInstance(domain, name string, parents ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.AddInstance(domain, name, parents...)
}

// AddEdge implements hql.Target.
func (t ReplicaTarget) AddEdge(domain, parent, child string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.AddEdge(domain, parent, child)
}

// Prefer implements hql.Target.
func (t ReplicaTarget) Prefer(domain, stronger, weaker string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Prefer(domain, stronger, weaker)
}

// CreateRelation implements hql.Target.
func (t ReplicaTarget) CreateRelation(name string, attrs ...catalog.AttrSpec) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.CreateRelation(name, attrs...)
}

// DropRelation implements hql.Target.
func (t ReplicaTarget) DropRelation(name string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.DropRelation(name)
}

// Assert implements hql.Target.
func (t ReplicaTarget) Assert(rel string, values ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Assert(rel, values...)
}

// Deny implements hql.Target.
func (t ReplicaTarget) Deny(rel string, values ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Deny(rel, values...)
}

// Retract implements hql.Target.
func (t ReplicaTarget) Retract(rel string, values ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Retract(rel, values...)
}

// Consolidate implements hql.Target.
func (t ReplicaTarget) Consolidate(rel string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Consolidate(rel)
}

// Explicate implements hql.Target.
func (t ReplicaTarget) Explicate(rel string, attrs ...string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.Explicate(rel, attrs...)
}

// DropNode implements hql.Target.
func (t ReplicaTarget) DropNode(domain, name string) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.DropNode(domain, name)
}

// SetMode implements hql.Target.
func (t ReplicaTarget) SetMode(rel string, mode core.Preemption) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.SetMode(rel, mode)
}

// ApplyTx implements hql.Target.
func (t ReplicaTarget) ApplyTx(ops []hql.TxOp) error {
	w, ok := t.writable()
	if !ok {
		return ErrReadOnlyReplica
	}
	return w.ApplyTx(ops)
}
