package repl

import (
	"errors"
	"testing"

	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/hql"
)

// ReplicaTarget's mutation surface: every hql.Target method refuses with
// ErrReadOnlyReplica while following and delegates once promoted. The
// replicas here are constructed directly (no network): the adapter only
// reads db and the promoted flag.

// mutation invokes one hql.Target mutation method against target.
type mutation struct {
	name string
	call func(t hql.Target) error
}

func allMutations() []mutation {
	return []mutation{
		{"CreateHierarchy", func(t hql.Target) error { return t.CreateHierarchy("Animal") }},
		{"AddClass", func(t hql.Target) error { return t.AddClass("Animal", "Bird") }},
		{"AddClass2", func(t hql.Target) error { return t.AddClass("Animal", "Fish") }},
		{"AddInstance", func(t hql.Target) error { return t.AddInstance("Animal", "Tweety", "Bird") }},
		{"AddEdge", func(t hql.Target) error { return t.AddEdge("Animal", "Fish", "Tweety") }},
		{"Prefer", func(t hql.Target) error { return t.Prefer("Animal", "Bird", "Fish") }},
		{"CreateRelation", func(t hql.Target) error {
			return t.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"})
		}},
		{"Assert", func(t hql.Target) error { return t.Assert("Flies", "Bird") }},
		{"Deny", func(t hql.Target) error { return t.Deny("Flies", "Fish") }},
		{"Retract", func(t hql.Target) error { return t.Retract("Flies", "Fish") }},
		{"Consolidate", func(t hql.Target) error { return t.Consolidate("Flies") }},
		{"Explicate", func(t hql.Target) error { return t.Explicate("Flies", "Creature") }},
		{"SetMode", func(t hql.Target) error { return t.SetMode("Flies", core.OnPath) }},
		{"ApplyTx", func(t hql.Target) error {
			return t.ApplyTx([]hql.TxOp{{Kind: "assert", Relation: "Flies", Values: []string{"Tweety"}}})
		}},
		{"DropRelation", func(t hql.Target) error { return t.DropRelation("Flies") }},
		{"DropNode", func(t hql.Target) error { return t.DropNode("Animal", "Tweety") }},
	}
}

func TestReplicaTargetRefusesAllMutationsUnpromoted(t *testing.T) {
	target := ReplicaTarget{R: &Replica{db: catalog.New()}}
	for _, m := range allMutations() {
		if err := m.call(target); !errors.Is(err, ErrReadOnlyReplica) {
			t.Errorf("%s on follower = %v, want ErrReadOnlyReplica", m.name, err)
		}
	}
	if target.Database() == nil {
		t.Fatal("Database() returned nil")
	}
}

func TestReplicaTargetDelegatesWhenPromoted(t *testing.T) {
	rep := &Replica{db: catalog.New(), promoted: true}
	target := ReplicaTarget{R: rep}
	// The mutation list is ordered so each call's preconditions are
	// established by the earlier ones (schema first, drops last).
	for _, m := range allMutations() {
		if err := m.call(target); err != nil {
			t.Fatalf("%s on promoted replica: %v", m.name, err)
		}
	}
	if _, err := rep.db.Relation("Flies"); err == nil {
		t.Fatal("DropRelation did not reach the database")
	}
}
