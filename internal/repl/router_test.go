package repl

import (
	"context"
	"strings"
	"testing"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/server"
)

// startReplicaServer serves HQL (read-only) plus LAG/PROMOTE over a
// replica, the way hrserved -replica-of wires it.
func startReplicaServer(t *testing.T, rep *Replica) *server.Server {
	t.Helper()
	srv := server.New(ReplicaTarget{R: rep}, server.Options{
		LagProbe: func() server.LagInfo {
			staleness, epoch, offset, state := rep.Lag()
			return server.LagInfo{Staleness: staleness, Epoch: epoch, Offset: offset, State: state}
		},
		Promote: rep.Promote,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("Start replica server: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func TestRouterSplitsReadsAndWrites(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.Assert("Flies", "Bird"))

	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)
	repSrv := startReplicaServer(t, rep)

	router, err := server.DialRouter(p.srv.Addr(), []string{repSrv.Addr()},
		server.WithMaxStaleness(5*time.Second),
		server.WithLagProbeInterval(0))
	if err != nil {
		t.Fatalf("DialRouter: %v", err)
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// A read-only script is served by the replica: provable because the
	// replica rejects writes, so a write routed there would fail — and
	// because a write through the router must land on the primary and then
	// appear on the replica via the stream.
	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("routed read: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("routed read = %q, want a positive HOLDS", out)
	}

	// A write goes to the primary (the replica would refuse it) and
	// replicates.
	if _, err := router.Exec(ctx, "INSTANCE Robin UNDER Bird; ASSERT Flies (Robin);"); err != nil {
		t.Fatalf("routed write: %v", err)
	}
	waitConverged(t, p.store, rep)
	out, err = router.Exec(ctx, "HOLDS Flies (Robin);")
	if err != nil {
		t.Fatalf("read after write: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("replica missing replicated write: %q", out)
	}
}

func TestRouterFallsBackWhenReplicaTooStale(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.Assert("Flies", "Bird"))

	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)
	repSrv := startReplicaServer(t, rep)

	// An impossible staleness bound: every read must fall back to the
	// primary — and still succeed.
	router, err := server.DialRouter(p.srv.Addr(), []string{repSrv.Addr()},
		server.WithMaxStaleness(0),
		server.WithLagProbeInterval(0))
	if err != nil {
		t.Fatalf("DialRouter: %v", err)
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("fallback read: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("fallback read = %q", out)
	}
}

func TestRouterFallsBackWhenReplicaDies(t *testing.T) {
	p := startPrimary(t, PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	must(t, p.store.CreateHierarchy("Animal"))
	must(t, p.store.AddClass("Animal", "Bird"))
	must(t, p.store.AddInstance("Animal", "Tweety", "Bird"))
	must(t, p.store.CreateRelation("Flies", catalog.AttrSpec{Name: "Creature", Domain: "Animal"}))
	must(t, p.store.Assert("Flies", "Bird"))

	rep := startReplica(t, p.srv.Addr())
	waitConverged(t, p.store, rep)
	repSrv := startReplicaServer(t, rep)

	router, err := server.DialRouter(p.srv.Addr(), []string{repSrv.Addr()},
		server.WithMaxStaleness(5*time.Second),
		server.WithLagProbeInterval(0))
	if err != nil {
		t.Fatalf("DialRouter: %v", err)
	}
	defer router.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// Kill the replica server mid-flight; reads must keep working via the
	// primary.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	repSrv.Shutdown(shutCtx)
	shutCancel()

	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	if err != nil {
		t.Fatalf("read after replica death: %v", err)
	}
	if !strings.Contains(out, "true") {
		t.Fatalf("read after replica death = %q", out)
	}
}
