package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hrdb/internal/storage"
)

// PrimaryOptions tune a Primary. The zero value gets defaults.
type PrimaryOptions struct {
	// ChunkBytes bounds one SHIP frame's payload. Default 256 KiB,
	// capped at the wire protocol's maxShipChunk.
	ChunkBytes int
	// HeartbeatInterval is how often a caught-up stream emits HB frames.
	// Heartbeats double as liveness probes and carry the durable
	// high-water mark that followers use to compute byte lag. Default
	// 500ms.
	HeartbeatInterval time.Duration
}

func (o *PrimaryOptions) defaults() {
	if o.ChunkBytes <= 0 || o.ChunkBytes > maxShipChunk {
		o.ChunkBytes = 256 << 10
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 500 * time.Millisecond
	}
}

// Primary serves replication from a store's WAL. It satisfies
// server.ReplSource structurally — internal/repl never imports
// internal/server; a daemon wires a Primary into server.Options.Repl.
//
// A Primary holds no per-follower state beyond the serving goroutine the
// server runs per REPL connection; any number of followers may stream
// concurrently.
type Primary struct {
	store *storage.Store
	opts  PrimaryOptions

	mu    sync.Mutex
	acked position // highest position any follower has acknowledged
}

// NewPrimary creates a replication source over an open store.
func NewPrimary(store *storage.Store, opts PrimaryOptions) *Primary {
	opts.defaults()
	return &Primary{store: store, opts: opts}
}

// Snapshot cuts a consistent bootstrap payload: the database spec plus the
// replication position replaying from which reproduces the primary, the
// fencing term, and the takeover divergence point (if any).
func (p *Primary) Snapshot() ([]byte, error) {
	spec, epoch, offset, err := p.store.ReplicationSnapshot()
	if err != nil {
		return nil, err
	}
	return encodeBootstrap(bootstrap{
		Spec: spec, Epoch: epoch, Offset: offset,
		Term:          spec.PrimaryTerm,
		TakeoverEpoch: spec.TakeoverEpoch, TakeoverOffset: spec.TakeoverOffset,
	})
}

// AckedPosition returns the highest position any follower has acknowledged
// as durably applied.
func (p *Primary) AckedPosition() (epoch uint64, offset int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acked.epoch, p.acked.offset
}

func (p *Primary) recordAck(pos position) {
	metricAcks.Inc()
	p.mu.Lock()
	if p.acked.before(pos) {
		p.acked = pos
		metricAckedEpoch.Set(int64(pos.epoch))
		metricAckedOffset.Set(pos.offset)
	}
	p.mu.Unlock()
}

// ServeStream streams WAL bytes from (epoch, offset) to a follower until
// the connection drops, the store closes, or the position turns out to be
// unservable (answered with an ERR stale frame — the follower re-bootstraps
// via SNAP). Resume positions always name record boundaries, so the raw
// byte stream picks up exactly where the previous connection left off.
//
// followerTerm is the highest fencing term the follower has seen (zero from
// pre-term followers). A follower ahead of this primary's own term is proof
// of deposition: a newer primary was elected while we were partitioned away.
// The store is fenced immediately — before a single frame is shipped — and
// the follower is turned away stale, so a deposed primary can neither
// accept writes nor feed followers divergent history.
func (p *Primary) ServeStream(r *bufio.Reader, w *bufio.Writer, epoch uint64, offset int64, followerTerm uint64) error {
	if p.store.Fence(followerTerm) {
		return writeStale(w, fmt.Sprintf("deposed: follower announced term %d beyond ours", followerTerm))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Drain follower ACKs concurrently; a read error means the connection
	// is gone, which also unblocks a ship loop parked in WaitChange. An ACK
	// carrying a higher term fences the store exactly like the REPL line
	// above; the ship loop notices on its next pass.
	var ackWG sync.WaitGroup
	ackWG.Add(1)
	go func() {
		defer ackWG.Done()
		defer cancel()
		for {
			term, ack, err := readAck(r)
			if err != nil {
				return
			}
			p.store.Fence(term)
			p.recordAck(ack)
		}
	}()
	defer ackWG.Wait()

	pos := position{epoch: epoch, offset: offset}
	lastHB := time.Time{}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if f := p.store.FencedBy(); f != 0 {
			return writeStale(w, fmt.Sprintf("deposed by term %d", f))
		}
		term := p.store.Term()
		curEpoch, curOff := p.store.Position()
		switch {
		case pos.epoch == curEpoch:
			if pos.offset > curOff {
				// A position from this epoch's future: the follower streamed
				// from a different primary (or the directory was restored
				// from an older backup). Unservable.
				return writeStale(w, fmt.Sprintf("offset %d beyond durable end %d of epoch %d", pos.offset, curOff, pos.epoch))
			}
			if pos.offset < curOff {
				chunk, err := p.store.ReadWAL(pos.epoch, pos.offset, p.opts.ChunkBytes)
				if err != nil {
					if errors.Is(err, storage.ErrWALUnavailable) {
						return writeStale(w, err.Error())
					}
					return err
				}
				if len(chunk) > 0 {
					if err := writeShip(w, term, pos, chunk); err != nil {
						return err
					}
					metricShippedBytes.Add(uint64(len(chunk)))
					pos.offset += int64(len(chunk))
				}
				continue
			}
			// Caught up: heartbeat, then wait for the position to advance
			// (bounded by the heartbeat interval so liveness keeps flowing).
			if time.Since(lastHB) >= p.opts.HeartbeatInterval {
				if err := writeHB(w, term, pos); err != nil {
					return err
				}
				lastHB = time.Now()
			}
			waitCtx, waitCancel := context.WithTimeout(ctx, p.opts.HeartbeatInterval)
			err := p.store.WaitChange(waitCtx, pos.epoch, pos.offset)
			waitCancel()
			switch {
			case err == nil, errors.Is(err, context.DeadlineExceeded):
				// Advanced, or time for the next heartbeat.
			case errors.Is(err, context.Canceled):
				return ctx.Err()
			default:
				return err // store closed
			}
		case pos.epoch < curEpoch:
			end, known := p.store.EpochEnd(pos.epoch)
			if !known {
				return writeStale(w, fmt.Sprintf("epoch %d predates this primary", pos.epoch))
			}
			switch {
			case pos.offset > end:
				return writeStale(w, fmt.Sprintf("offset %d beyond end %d of retired epoch %d", pos.offset, end, pos.epoch))
			case pos.offset == end:
				// The retired epoch is fully shipped: continue in the next
				// one. Epochs advance by one per checkpoint, so +1 either is
				// the current epoch or another fully retired one.
				next := pos.epoch + 1
				if err := writeRotate(w, term, next); err != nil {
					return err
				}
				pos = position{epoch: next}
			default:
				chunk, err := p.store.ReadWAL(pos.epoch, pos.offset, p.opts.ChunkBytes)
				if err != nil {
					if errors.Is(err, storage.ErrWALUnavailable) {
						// Checkpoint GC removed the file before this follower
						// caught up; it must re-bootstrap.
						return writeStale(w, err.Error())
					}
					return err
				}
				if err := writeShip(w, term, pos, chunk); err != nil {
					return err
				}
				metricShippedBytes.Add(uint64(len(chunk)))
				pos.offset += int64(len(chunk))
			}
		default: // pos.epoch > curEpoch
			return writeStale(w, fmt.Sprintf("epoch %d is ahead of primary epoch %d", pos.epoch, curEpoch))
		}
	}
}
