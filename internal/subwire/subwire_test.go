package subwire

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func mustAppend(t *testing.T, dst []byte, f Frame) []byte {
	t.Helper()
	out, err := AppendFrame(dst, f)
	if err != nil {
		t.Fatalf("AppendFrame(%+v): %v", f, err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	frames := []Frame{
		{Kind: KindSnap, Epoch: 3, Offset: 1024, Rows: []string{"(a, b)", "(c, d)"}},
		{Kind: KindSnap, Epoch: 0, Offset: 0},
		{Kind: KindDelta, Epoch: 3, Offset: 2048, Added: []string{"(e, f)"}, Removed: []string{"(a, b)"}},
		{Kind: KindDelta, Epoch: 4, Offset: 16, Added: []string{"+ (x)"}},
		{Kind: KindHB, Epoch: 4, Offset: 99},
		{Kind: KindErr, Code: "stale", Msg: "position retired; resubscribe without resume"},
		{Kind: KindErr, Code: "notfound", Msg: ""},
	}
	var wire []byte
	for _, f := range frames {
		wire = mustAppend(t, wire, f)
	}

	var d Decoder
	d.Feed(wire)
	for i, want := range frames {
		got, ok, err := d.Next()
		if err != nil || !ok {
			t.Fatalf("frame %d: Next = %v, %v, %v", i, got, ok, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok, err := d.Next(); ok || err != nil {
		t.Fatalf("trailing Next = %v, %v", ok, err)
	}
	if d.Buffered() != 0 {
		t.Fatalf("Buffered = %d after draining", d.Buffered())
	}
}

// TestByteAtATime pins the incremental contract: feeding one byte at a time
// yields the same frame sequence as feeding the stream whole.
func TestByteAtATime(t *testing.T) {
	var wire []byte
	want := []Frame{
		{Kind: KindSnap, Epoch: 1, Offset: 7, Rows: []string{"r1", "r2", "r3"}},
		{Kind: KindDelta, Epoch: 1, Offset: 21, Added: []string{"r4"}, Removed: []string{"r1", "r2"}},
		{Kind: KindHB, Epoch: 2, Offset: 0},
	}
	for _, f := range want {
		wire = mustAppend(t, wire, f)
	}
	var d Decoder
	var got []Frame
	for _, b := range wire {
		d.Feed([]byte{b})
		for {
			f, ok, err := d.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			got = append(got, f)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"BOGUS 1 2\n",
		"SNAP 1 2\n",                     // missing size field
		"SNAP x 2 0\n\n",                 // bad epoch
		"SNAP 1 -5 0\n\n",                // negative offset
		"SNAP 1 2 -1\n\n",                // negative size
		"SNAP 1 2 99999999999999999\n",   // absurd size
		"DELTA 1 2 2\nr1\n",              // unsigned delta line
		"DELTA 1 2 1\n+\n",               // empty delta row
		"SNAP 1 2 2\n\na\n",              // empty row via split
		"SNAP 1 2 3\na\r\nb",             // carriage return in row
		"SNAP 1 2 2\nabX",                // payload not newline-terminated
		"HB 1\n",                         // short HB
		"ERR  1\nx\n",                    // empty code
		strings.Repeat("A", maxHeader+2), // unterminated header
	}
	for _, c := range cases {
		var d Decoder
		d.Feed([]byte(c))
		_, _, err := d.Next()
		if !errors.Is(err, ErrBadFrame) {
			t.Errorf("decode %q: err = %v, want ErrBadFrame", c, err)
		}
		// Sticky: the stream stays dead.
		if _, _, err2 := d.Next(); !errors.Is(err2, ErrBadFrame) {
			t.Errorf("decode %q: second Next err = %v, want sticky ErrBadFrame", c, err2)
		}
	}
}

func TestEncodeRejects(t *testing.T) {
	bad := []Frame{
		{Kind: "WHAT"},
		{Kind: KindSnap, Rows: []string{"a\nb"}},
		{Kind: KindSnap, Rows: []string{""}},
		{Kind: KindDelta, Added: []string{"a\rb"}},
		{Kind: KindErr, Code: "two words"},
		{Kind: KindErr, Code: ""},
		{Kind: KindErr, Code: "x", Msg: "line\nbreak"},
	}
	for _, f := range bad {
		if _, err := AppendFrame(nil, f); err == nil {
			t.Errorf("AppendFrame(%+v) succeeded, want error", f)
		}
	}
}

func TestIncompleteThenComplete(t *testing.T) {
	wire := mustAppend(t, nil, Frame{Kind: KindDelta, Epoch: 9, Offset: 40, Added: []string{"row"}})
	var d Decoder
	d.Feed(wire[:len(wire)-1])
	if _, ok, err := d.Next(); ok || err != nil {
		t.Fatalf("partial frame: Next = %v, %v; want not ready", ok, err)
	}
	d.Feed(wire[len(wire)-1:])
	f, ok, err := d.Next()
	if err != nil || !ok || f.Kind != KindDelta || len(f.Added) != 1 {
		t.Fatalf("completed frame: %+v, %v, %v", f, ok, err)
	}
}

// FuzzSubscribeFrameDecode checks the two decode invariants the chaos and
// resume machinery rely on: (1) one-shot and byte-at-a-time decoding agree
// on frames and error class; (2) re-encoding every decoded frame reproduces
// the consumed prefix of the input.
func FuzzSubscribeFrameDecode(f *testing.F) {
	seed := [][]byte{
		[]byte("SNAP 1 2 5\na\nb\nc\n"),
		[]byte("DELTA 3 44 6\n+x\n-yz\n"),
		[]byte("HB 0 0\n"),
		[]byte("ERR stale 4\ngone\n"),
		[]byte("SNAP 1 2 0\n\nHB 1 3\n"),
		[]byte("garbage"),
		{0xff, 0x00, '\n'},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		// One-shot decode.
		var whole Decoder
		whole.Feed(data)
		var wholeFrames []Frame
		var wholeErr error
		for {
			fr, ok, err := whole.Next()
			if err != nil {
				wholeErr = err
				break
			}
			if !ok {
				break
			}
			wholeFrames = append(wholeFrames, fr)
		}

		// Byte-at-a-time decode.
		var inc Decoder
		var incFrames []Frame
		var incErr error
	feed:
		for _, b := range data {
			inc.Feed([]byte{b})
			for {
				fr, ok, err := inc.Next()
				if err != nil {
					incErr = err
					break feed
				}
				if !ok {
					continue feed
				}
				incFrames = append(incFrames, fr)
			}
		}

		if (wholeErr == nil) != (incErr == nil) {
			t.Fatalf("error divergence: whole=%v inc=%v", wholeErr, incErr)
		}
		if wholeErr != nil && (!errors.Is(wholeErr, ErrBadFrame) || !errors.Is(incErr, ErrBadFrame)) {
			t.Fatalf("error class: whole=%v inc=%v, want ErrBadFrame", wholeErr, incErr)
		}
		if !reflect.DeepEqual(wholeFrames, incFrames) {
			t.Fatalf("frame divergence:\nwhole: %+v\ninc:   %+v", wholeFrames, incFrames)
		}

		// Encode stability: every decoded frame re-encodes, and decoding
		// the re-encoding reproduces the same frames. (Byte-exactness is
		// not required — the decoder accepts non-canonical numerals.)
		var re []byte
		for _, fr := range wholeFrames {
			var err error
			re, err = AppendFrame(re, fr)
			if err != nil {
				t.Fatalf("re-encode %+v: %v", fr, err)
			}
		}
		var again Decoder
		again.Feed(re)
		var reFrames []Frame
		for {
			fr, ok, err := again.Next()
			if err != nil {
				t.Fatalf("decode of re-encoding failed: %v (wire %q)", err, re)
			}
			if !ok {
				break
			}
			reFrames = append(reFrames, fr)
		}
		if !reflect.DeepEqual(reFrames, wholeFrames) {
			t.Fatalf("re-decode divergence:\nfirst:  %+v\nsecond: %+v", wholeFrames, reFrames)
		}
	})
}
