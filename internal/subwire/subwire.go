// Package subwire defines the wire encoding of SUBSCRIBE change feeds: the
// frames a server pushes to a subscribed client, carrying a view's initial
// snapshot and its subsequent deltas with resumable WAL positions.
//
// The encoding is line-oriented, like protocol v1, so a feed is readable
// with netcat and embeds unchanged as v2 frame payloads:
//
//	SNAP <epoch> <offset> <n>\n<payload>\n   full row set (payload = rows,
//	                                         one per line, n payload bytes)
//	DELTA <epoch> <offset> <n>\n<payload>\n  incremental change (payload
//	                                         lines are "+row" / "-row")
//	HB <epoch> <offset>\n                    heartbeat: caught up through
//	                                         this position, no changes
//	ERR <code> <n>\n<message>\n              feed terminated (stale resume
//	                                         position, dropped view, ...)
//
// Positions are storage WAL positions (checkpoint epoch, byte offset): a
// client that reconnects with the last position it applied receives exactly
// the committed deltas after it, gap- and duplicate-free, mirroring the
// REPL stream contract. Rows never contain newline bytes (the view layer
// renders tuples on one line), which the encoder enforces.
package subwire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Frame kinds.
const (
	KindSnap  = "SNAP"
	KindDelta = "DELTA"
	KindHB    = "HB"
	KindErr   = "ERR"
)

// Frame is one decoded feed frame.
type Frame struct {
	Kind string
	// Epoch and Offset are the resumable position after applying this
	// frame (SNAP, DELTA, HB).
	Epoch  uint64
	Offset int64
	// Rows is the full row set of a SNAP frame.
	Rows []string
	// Added and Removed are the row changes of a DELTA frame.
	Added, Removed []string
	// Code and Msg describe an ERR frame.
	Code, Msg string
}

// ErrBadFrame is wrapped by every decode failure: the input bytes do not
// form a valid feed frame. A stream that returns it is unrecoverable; the
// client must reconnect.
var ErrBadFrame = errors.New("subwire: malformed feed frame")

// Limits. A frame holds at most one view snapshot; maxPayload matches the
// storage stream's frame cap so a feed can carry anything the WAL can.
const (
	maxHeader  = 256
	maxPayload = 16 << 20
)

// AppendFrame appends f's encoding to dst. It rejects frames whose rows
// contain newline bytes or are empty (both unrepresentable on the wire).
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	switch f.Kind {
	case KindSnap, KindDelta:
		var payload []byte
		add := func(prefix string, rows []string) error {
			for _, r := range rows {
				if r == "" || strings.ContainsAny(r, "\n\r") {
					return fmt.Errorf("subwire: unencodable row %q", r)
				}
				if len(payload) > 0 {
					payload = append(payload, '\n')
				}
				payload = append(payload, prefix...)
				payload = append(payload, r...)
			}
			return nil
		}
		var err error
		if f.Kind == KindSnap {
			err = add("", f.Rows)
		} else if err = add("+", f.Added); err == nil {
			err = add("-", f.Removed)
		}
		if err != nil {
			return nil, err
		}
		if len(payload) > maxPayload {
			return nil, fmt.Errorf("subwire: frame payload %d bytes exceeds cap", len(payload))
		}
		dst = append(dst, f.Kind...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, f.Epoch, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, f.Offset, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(len(payload)), 10)
		dst = append(dst, '\n')
		dst = append(dst, payload...)
		dst = append(dst, '\n')
		return dst, nil
	case KindHB:
		dst = append(dst, KindHB...)
		dst = append(dst, ' ')
		dst = strconv.AppendUint(dst, f.Epoch, 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, f.Offset, 10)
		dst = append(dst, '\n')
		return dst, nil
	case KindErr:
		if f.Code == "" || strings.ContainsAny(f.Code, " \n\r") {
			return nil, fmt.Errorf("subwire: unencodable error code %q", f.Code)
		}
		if strings.ContainsAny(f.Msg, "\n\r") || len(f.Msg) > maxPayload {
			return nil, fmt.Errorf("subwire: unencodable error message")
		}
		dst = append(dst, KindErr...)
		dst = append(dst, ' ')
		dst = append(dst, f.Code...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(len(f.Msg)), 10)
		dst = append(dst, '\n')
		dst = append(dst, f.Msg...)
		dst = append(dst, '\n')
		return dst, nil
	default:
		return nil, fmt.Errorf("subwire: unknown frame kind %q", f.Kind)
	}
}

// Decoder incrementally reassembles frames from a byte stream. Feed bytes
// in any chunking; Next yields each complete frame exactly once. Decoding
// is deterministic over the concatenated input: feeding a stream one byte
// at a time yields the same frames and the same error (if any) as feeding
// it whole.
type Decoder struct {
	buf  []byte
	dead error
}

// Feed appends stream bytes. The decoder copies p.
func (d *Decoder) Feed(p []byte) { d.buf = append(d.buf, p...) }

// Buffered reports how many fed bytes are not yet consumed by Next.
func (d *Decoder) Buffered() int { return len(d.buf) }

// Next returns the next complete frame. ok is false when more bytes are
// needed. Errors wrap ErrBadFrame and are sticky: a corrupt stream stays
// corrupt.
func (d *Decoder) Next() (f Frame, ok bool, err error) {
	if d.dead != nil {
		return Frame{}, false, d.dead
	}
	f, n, err := decodeOne(d.buf)
	if err != nil {
		d.dead = err
		return Frame{}, false, err
	}
	if n == 0 {
		return Frame{}, false, nil
	}
	d.buf = d.buf[n:]
	return f, true, nil
}

// decodeOne parses one frame from the head of buf, returning the bytes it
// spans. n == 0 with a nil error means incomplete input.
func decodeOne(buf []byte) (f Frame, n int, err error) {
	nl := -1
	for i, b := range buf {
		if b == '\n' {
			nl = i
			break
		}
		if i >= maxHeader {
			return Frame{}, 0, fmt.Errorf("%w: header exceeds %d bytes", ErrBadFrame, maxHeader)
		}
	}
	if nl < 0 {
		if len(buf) > maxHeader {
			return Frame{}, 0, fmt.Errorf("%w: header exceeds %d bytes", ErrBadFrame, maxHeader)
		}
		return Frame{}, 0, nil
	}
	fields := strings.Split(string(buf[:nl]), " ")
	switch fields[0] {
	case KindSnap, KindDelta:
		if len(fields) != 4 {
			return Frame{}, 0, fmt.Errorf("%w: %s header wants 4 fields, got %d", ErrBadFrame, fields[0], len(fields))
		}
		epoch, offset, err := parsePos(fields[1], fields[2])
		if err != nil {
			return Frame{}, 0, err
		}
		size, err := parseSize(fields[3])
		if err != nil {
			return Frame{}, 0, err
		}
		total := nl + 1 + size + 1
		if len(buf) < total {
			return Frame{}, 0, nil
		}
		payload := buf[nl+1 : nl+1+size]
		if buf[total-1] != '\n' {
			return Frame{}, 0, fmt.Errorf("%w: payload not newline-terminated", ErrBadFrame)
		}
		f = Frame{Kind: fields[0], Epoch: epoch, Offset: offset}
		if size > 0 {
			for _, line := range strings.Split(string(payload), "\n") {
				switch {
				case line == "":
					return Frame{}, 0, fmt.Errorf("%w: empty row line", ErrBadFrame)
				case strings.ContainsRune(line, '\r'):
					return Frame{}, 0, fmt.Errorf("%w: carriage return in row", ErrBadFrame)
				case f.Kind == KindSnap:
					f.Rows = append(f.Rows, line)
				case line[0] == '+':
					f.Added = append(f.Added, line[1:])
				case line[0] == '-':
					f.Removed = append(f.Removed, line[1:])
				default:
					return Frame{}, 0, fmt.Errorf("%w: delta line without sign", ErrBadFrame)
				}
				if f.Kind == KindDelta && len(line) == 1 {
					return Frame{}, 0, fmt.Errorf("%w: empty row line", ErrBadFrame)
				}
			}
		}
		return f, total, nil
	case KindHB:
		if len(fields) != 3 {
			return Frame{}, 0, fmt.Errorf("%w: HB header wants 3 fields, got %d", ErrBadFrame, len(fields))
		}
		epoch, offset, err := parsePos(fields[1], fields[2])
		if err != nil {
			return Frame{}, 0, err
		}
		return Frame{Kind: KindHB, Epoch: epoch, Offset: offset}, nl + 1, nil
	case KindErr:
		if len(fields) != 3 {
			return Frame{}, 0, fmt.Errorf("%w: ERR header wants 3 fields, got %d", ErrBadFrame, len(fields))
		}
		if fields[1] == "" {
			return Frame{}, 0, fmt.Errorf("%w: empty error code", ErrBadFrame)
		}
		size, err := parseSize(fields[2])
		if err != nil {
			return Frame{}, 0, err
		}
		total := nl + 1 + size + 1
		if len(buf) < total {
			return Frame{}, 0, nil
		}
		if buf[total-1] != '\n' {
			return Frame{}, 0, fmt.Errorf("%w: payload not newline-terminated", ErrBadFrame)
		}
		msg := string(buf[nl+1 : nl+1+size])
		if strings.ContainsAny(msg, "\n\r") {
			return Frame{}, 0, fmt.Errorf("%w: newline in error message", ErrBadFrame)
		}
		return Frame{Kind: KindErr, Code: fields[1], Msg: msg}, total, nil
	default:
		return Frame{}, 0, fmt.Errorf("%w: unknown kind %q", ErrBadFrame, fields[0])
	}
}

func parsePos(e, o string) (uint64, int64, error) {
	epoch, err := strconv.ParseUint(e, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: bad epoch %q", ErrBadFrame, e)
	}
	offset, err := strconv.ParseInt(o, 10, 64)
	if err != nil || offset < 0 {
		return 0, 0, fmt.Errorf("%w: bad offset %q", ErrBadFrame, o)
	}
	return epoch, offset, nil
}

func parseSize(s string) (int, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 || n > maxPayload {
		return 0, fmt.Errorf("%w: bad payload size %q", ErrBadFrame, s)
	}
	return int(n), nil
}
