package mining

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hrdb/internal/flat"
)

// clusteredFixture: 6 birds fly and eat seeds; 2 penguins swim and eat
// fish. Classifying the animal column should mint two classes and compress
// 16 rows into 4 tuples.
func clusteredFixture(t *testing.T) *flat.Relation {
	t.Helper()
	r := flat.New("Does", "Animal", "Activity")
	birds := []string{"tweety", "robin", "lark", "wren", "finch", "dove"}
	penguins := []string{"paul", "pete"}
	for _, b := range birds {
		for _, a := range []string{"fly", "eat_seeds"} {
			if err := r.Insert(b, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, p := range penguins {
		for _, a := range []string{"swim", "eat_fish"} {
			if err := r.Insert(p, a); err != nil {
				t.Fatal(err)
			}
		}
	}
	return r
}

func TestMineClusteredData(t *testing.T) {
	r := clusteredFixture(t)
	res, err := Mine(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlatRows != 16 {
		t.Fatalf("FlatRows = %d", res.FlatRows)
	}
	if res.StoredTuples != 4 {
		t.Fatalf("StoredTuples = %d: %v", res.StoredTuples, res.Relation.Tuples())
	}
	if got := res.CompressionRatio(); got != 4 {
		t.Fatalf("ratio = %v", got)
	}
	if len(res.Classes) != 2 {
		t.Fatalf("classes = %v", res.Classes)
	}
	// Class membership: the 6 birds together, the 2 penguins together.
	sizes := map[int]int{}
	for _, members := range res.Classes {
		sizes[len(members)]++
	}
	if sizes[6] != 1 || sizes[2] != 1 {
		t.Fatalf("class sizes = %v", sizes)
	}
}

// TestMinePreservesExtension: the mined relation's extension equals the
// input rows exactly.
func TestMinePreservesExtension(t *testing.T) {
	r := clusteredFixture(t)
	res, err := Mine(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := res.Relation.Extension()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, it := range ext {
		got[it.Key()] = true
	}
	want := map[string]bool{}
	for _, row := range r.Rows() {
		want[row.Key()] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("extension mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestMineSingletonGroups: values with unique contexts stay instances.
func TestMineSingletonGroups(t *testing.T) {
	r := flat.New("R", "X", "Y")
	_ = r.Insert("a", "1")
	_ = r.Insert("b", "2")
	res, err := Mine(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) != 0 {
		t.Fatalf("classes = %v", res.Classes)
	}
	if res.StoredTuples != 2 {
		t.Fatalf("tuples = %d", res.StoredTuples)
	}
	if res.CompressionRatio() != 1 {
		t.Fatalf("ratio = %v", res.CompressionRatio())
	}
}

func TestMineErrors(t *testing.T) {
	r := flat.New("R", "X")
	if _, err := Mine(r, 5); err == nil {
		t.Fatal("bad index accepted")
	}
	// Empty relation mines to empty.
	res, err := Mine(r, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoredTuples != 0 || res.CompressionRatio() != 1 {
		t.Fatalf("empty: %+v", res)
	}
}

// TestBestAttribute picks the column with the larger win.
func TestBestAttribute(t *testing.T) {
	// Classifying Animal compresses 4×; classifying Activity only 2×
	// (fly/eat_seeds share contexts, swim/eat_fish share contexts).
	r := clusteredFixture(t)
	best, res, err := BestAttribute(r)
	if err != nil {
		t.Fatal(err)
	}
	if best != 0 {
		t.Fatalf("best = %d (ratio %v)", best, res.CompressionRatio())
	}
}

// TestMineRandomPreservesExtension: property test on random flat data.
func TestMineRandomPreservesExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		r := flat.New("R", "X", "Y")
		for n := 0; n < 3+rng.Intn(20); n++ {
			_ = r.Insert(
				fmt.Sprintf("x%d", rng.Intn(8)),
				fmt.Sprintf("y%d", rng.Intn(4)),
			)
		}
		res, err := Mine(r, rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.StoredTuples > res.FlatRows {
			t.Fatalf("trial %d: mining grew the relation", trial)
		}
		ext, err := res.Relation.Extension()
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, it := range ext {
			got[it.Key()] = true
		}
		want := map[string]bool{}
		for _, row := range r.Rows() {
			want[row.Key()] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: extension mismatch\nrows %v\ntuples %v",
				trial, r.Rows(), res.Relation.Tuples())
		}
	}
}
