// Package mining implements the second future-work direction of §4 of
// Jagadish (SIGMOD '89): "the database system could mechanically organize
// traditional relation(s) given into hierarchical relations with 'classes'
// being defined in such a way that storage is minimized."
//
// The miner takes a flat relation, picks one attribute to classify, groups
// its values by the exact set of contexts (the remaining attribute
// combinations) they appear with, and mints one class per group of two or
// more values. Each group's rows collapse into |contexts| class-valued
// tuples, so the output hierarchical relation is never larger than the
// input and shrinks by a factor approaching the group size on clustered
// data.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"hrdb/internal/core"
	"hrdb/internal/flat"
	"hrdb/internal/hierarchy"
)

// Result describes a mined organization.
type Result struct {
	// Relation is the hierarchical relation equivalent to the input.
	Relation *core.Relation
	// Hierarchies are the per-attribute domains (mined classes appear in
	// the classified attribute's hierarchy).
	Hierarchies []*hierarchy.Hierarchy
	// Classes maps each minted class name to its member values.
	Classes map[string][]string
	// FlatRows and StoredTuples record the compression achieved.
	FlatRows     int
	StoredTuples int
}

// CompressionRatio returns FlatRows / StoredTuples (1.0 means no gain).
func (r *Result) CompressionRatio() float64 {
	if r.StoredTuples == 0 {
		return 1
	}
	return float64(r.FlatRows) / float64(r.StoredTuples)
}

// Mine organizes the flat relation into a hierarchical one by classifying
// the attribute at index classify. Class names are derived from the flat
// relation's name. The resulting relation's extension equals the input's
// row set (verified cheaply by construction: every row is covered by
// exactly its group's class tuple, and classes never overlap).
func Mine(r *flat.Relation, classify int) (*Result, error) {
	attrs := r.Attrs()
	if classify < 0 || classify >= len(attrs) {
		return nil, fmt.Errorf("mining: classify index %d out of range for %v", classify, attrs)
	}

	// contextsOf[value] = sorted set of context keys the value occurs with;
	// a context is the row minus the classified column.
	contextsOf := map[string]map[string]bool{}
	contextRows := map[string][]string{} // context key → context values
	for _, row := range r.Rows() {
		ctx := make([]string, 0, len(row)-1)
		for i, v := range row {
			if i != classify {
				ctx = append(ctx, v)
			}
		}
		ck := strings.Join(ctx, "\x1f")
		if _, ok := contextRows[ck]; !ok {
			contextRows[ck] = ctx
		}
		v := row[classify]
		if contextsOf[v] == nil {
			contextsOf[v] = map[string]bool{}
		}
		contextsOf[v][ck] = true
	}

	// Group values with identical context sets.
	groupOf := map[string][]string{} // signature → values
	for v, ctxs := range contextsOf {
		keys := make([]string, 0, len(ctxs))
		for k := range ctxs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sig := strings.Join(keys, "\x1e")
		groupOf[sig] = append(groupOf[sig], v)
	}

	// Build hierarchies: the classified attribute gets minted classes; the
	// others are flat.
	hs := make([]*hierarchy.Hierarchy, len(attrs))
	for i, a := range attrs {
		hs[i] = hierarchy.New("dom_" + a)
	}
	// Collect every value per attribute.
	valueSeen := make([]map[string]bool, len(attrs))
	for i := range attrs {
		valueSeen[i] = map[string]bool{}
	}
	for _, row := range r.Rows() {
		for i, v := range row {
			if !valueSeen[i][v] {
				valueSeen[i][v] = true
				if i != classify {
					if err := hs[i].AddInstance(v); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Deterministic group ordering: by sorted first member.
	sigs := make([]string, 0, len(groupOf))
	for sig := range groupOf {
		sort.Strings(groupOf[sig])
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool { return groupOf[sigs[i]][0] < groupOf[sigs[j]][0] })

	classes := map[string][]string{}
	classNameFor := map[string]string{} // signature → class (or sole value)
	counter := 0
	for _, sig := range sigs {
		members := groupOf[sig]
		if len(members) == 1 {
			if err := hs[classify].AddInstance(members[0]); err != nil {
				return nil, err
			}
			classNameFor[sig] = members[0]
			continue
		}
		counter++
		class := fmt.Sprintf("%s_class_%d", r.Name(), counter)
		if err := hs[classify].AddClass(class); err != nil {
			return nil, err
		}
		for _, m := range members {
			if err := hs[classify].AddInstance(m, class); err != nil {
				return nil, err
			}
		}
		classes[class] = members
		classNameFor[sig] = class
	}

	// Build the hierarchical relation: one tuple per (group, context).
	cattrs := make([]core.Attribute, len(attrs))
	for i, a := range attrs {
		cattrs[i] = core.Attribute{Name: a, Domain: hs[i]}
	}
	schema, err := core.NewSchema(cattrs...)
	if err != nil {
		return nil, err
	}
	out := core.NewRelation(r.Name(), schema)
	for _, sig := range sigs {
		rep := groupOf[sig][0]
		node := classNameFor[sig]
		cks := make([]string, 0, len(contextsOf[rep]))
		for ck := range contextsOf[rep] {
			cks = append(cks, ck)
		}
		sort.Strings(cks)
		for _, ck := range cks {
			ctx := contextRows[ck]
			item := make(core.Item, len(attrs))
			n := 0
			for i := range attrs {
				if i == classify {
					item[i] = node
				} else {
					item[i] = ctx[n]
					n++
				}
			}
			if err := out.Insert(item, true); err != nil {
				return nil, err
			}
		}
	}

	return &Result{
		Relation:     out,
		Hierarchies:  hs,
		Classes:      classes,
		FlatRows:     r.Len(),
		StoredTuples: out.Len(),
	}, nil
}

// BestAttribute tries every attribute and returns the classification index
// with the highest compression ratio.
func BestAttribute(r *flat.Relation) (int, *Result, error) {
	best := -1
	var bestRes *Result
	for i := range r.Attrs() {
		res, err := Mine(r, i)
		if err != nil {
			return 0, nil, err
		}
		if bestRes == nil || res.CompressionRatio() > bestRes.CompressionRatio() {
			best, bestRes = i, res
		}
	}
	return best, bestRes, nil
}
