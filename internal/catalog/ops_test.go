package catalog

import (
	"errors"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// TestApplyOps: the serializable-op entry point used by HQL and the WAL.
func TestApplyOps(t *testing.T) {
	db := setupFlies(t)
	ops := []TxOp{
		{Kind: "deny", Relation: "Flies", Values: []string{"GalapagosPenguin"}},
		{Kind: "assert", Relation: "Flies", Values: []string{"Patricia"}},
	}
	must(t, db.ApplyOps(ops))
	got, err := db.Holds("Flies", "Paul")
	must(t, err)
	if got {
		t.Fatal("Paul should not fly")
	}
	// Retract through ops.
	must(t, db.ApplyOps([]TxOp{{Kind: "retract", Relation: "Flies", Values: []string{"Patricia"}}, {Kind: "retract", Relation: "Flies", Values: []string{"GalapagosPenguin"}}}))
	// Unknown kind rolls back.
	if err := db.ApplyOps([]TxOp{{Kind: "zap", Relation: "Flies"}}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}

// TestAttachDuplicates: attach paths reject duplicates.
func TestAttachDuplicates(t *testing.T) {
	db := setupFlies(t)
	if err := db.AttachHierarchy(hierarchy.New("Animal")); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	h := hierarchy.New("Other")
	must(t, db.AttachHierarchy(h))
	s := core.MustSchema(core.Attribute{Name: "X", Domain: h})
	r := core.NewRelation("Flies", s)
	if err := db.AttachRelation(r); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	r2 := core.NewRelation("Other", s)
	must(t, db.AttachRelation(r2))
}

// TestUpdateOnMissingRelation.
func TestUpdateOnMissingRelation(t *testing.T) {
	db := New()
	if err := db.Assert("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := db.Deny("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.Evaluate("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestInsertValidationThroughDatabase: core validation errors surface.
func TestInsertValidationThroughDatabase(t *testing.T) {
	db := setupFlies(t)
	if err := db.Assert("Flies", "NotAnAnimal"); !errors.Is(err, core.ErrUnknownValue) {
		t.Fatalf("got %v", err)
	}
	if err := db.Assert("Flies", "a", "b"); !errors.Is(err, core.ErrArity) {
		t.Fatalf("got %v", err)
	}
	if err := db.Deny("Flies", "Bird"); !errors.Is(err, core.ErrContradiction) {
		t.Fatalf("got %v", err)
	}
}

// TestWarnPolicyInsideSuccessfulTx: warnings accumulate across transaction
// commits as well.
func TestWarnPolicyInsideSuccessfulTx(t *testing.T) {
	db := setupFlies(t)
	db.SetPolicy(WarnExceptions)
	tx := db.Begin()
	tx.Deny("Flies", "Tweety")
	must(t, tx.Commit())
	if len(db.Warnings()) != 1 {
		t.Fatal("warning lost in tx")
	}
}

// TestTxRetractMissingIsNoop.
func TestTxRetractMissingIsNoop(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Retract("Flies", "Tweety") // no exact tuple on Tweety
	must(t, tx.Commit())
	got, err := db.Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("noop retract changed semantics")
	}
}

// TestTxReassertSameSignIsNoop.
func TestTxReassertSameSignIsNoop(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Assert("Flies", "Bird")
	tx.Assert("Flies", "Bird")
	must(t, tx.Commit())
	r, _ := db.Relation("Flies")
	if r.Len() != 3 {
		t.Fatalf("tuples = %d", r.Len())
	}
}
