package catalog

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"hrdb/internal/core"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// setupFlies builds a database with the Figure 1 hierarchy and Flies
// relation.
func setupFlies(t *testing.T) *Database {
	t.Helper()
	db := New()
	h, err := db.CreateHierarchy("Animal")
	must(t, err)
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Canary", "Bird"))
	must(t, h.AddInstance("Tweety", "Canary"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddClass("GalapagosPenguin", "Penguin"))
	must(t, h.AddClass("AmazingFlyingPenguin", "Penguin"))
	must(t, h.AddInstance("Paul", "GalapagosPenguin"))
	must(t, h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Peter", "AmazingFlyingPenguin"))
	_, err = db.CreateRelation("Flies", AttrSpec{Name: "Creature", Domain: "Animal"})
	must(t, err)
	must(t, db.Assert("Flies", "Bird"))
	must(t, db.Deny("Flies", "Penguin"))
	must(t, db.Assert("Flies", "AmazingFlyingPenguin"))
	return db
}

func TestCreateAndLookup(t *testing.T) {
	db := setupFlies(t)
	if _, err := db.Hierarchy("Animal"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Hierarchy("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.Relation("Flies"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Relation("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if got := db.Hierarchies(); len(got) != 1 || got[0] != "Animal" {
		t.Fatalf("Hierarchies = %v", got)
	}
	if got := db.Relations(); len(got) != 1 || got[0] != "Flies" {
		t.Fatalf("Relations = %v", got)
	}
}

func TestCreateDuplicates(t *testing.T) {
	db := setupFlies(t)
	if _, err := db.CreateHierarchy("Animal"); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.CreateRelation("Flies"); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	if _, err := db.CreateRelation("R2", AttrSpec{Name: "X", Domain: "Nope"}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestHoldsAndEvaluate(t *testing.T) {
	db := setupFlies(t)
	got, err := db.Holds("Flies", "Tweety")
	must(t, err)
	if !got {
		t.Fatal("Tweety should fly")
	}
	v, err := db.Evaluate("Flies", "Paul")
	must(t, err)
	if v.Value {
		t.Fatal("Paul should not fly")
	}
	if _, err := db.Holds("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestUpdateRejectsConflict: a single update that creates an unresolved
// conflict is rolled back (§3.1).
func TestUpdateRejectsConflict(t *testing.T) {
	db := setupFlies(t)
	err := db.Deny("Flies", "GalapagosPenguin") // conflicts at Patricia
	var ie *core.InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InconsistencyError", err)
	}
	// The update was rolled back.
	r, _ := db.Relation("Flies")
	if _, ok := r.Lookup(core.Item{"GalapagosPenguin"}); ok {
		t.Fatal("conflicting tuple was not rolled back")
	}
}

// TestTransactionResolvesConflict: the same update packaged with its
// resolution commits (§3.1's transaction requirement).
func TestTransactionResolvesConflict(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Deny("Flies", "GalapagosPenguin").Assert("Flies", "Patricia")
	must(t, tx.Commit())
	got, err := db.Holds("Flies", "Patricia")
	must(t, err)
	if !got {
		t.Fatal("Patricia should fly via the resolving tuple")
	}
	got, err = db.Holds("Flies", "Paul")
	must(t, err)
	if got {
		t.Fatal("Paul should not fly")
	}
}

// TestTransactionAtomicRollback: a failing commit leaves no trace.
func TestTransactionAtomicRollback(t *testing.T) {
	db := setupFlies(t)
	r, _ := db.Snapshot("Flies")
	before := r.Tuples()

	tx := db.Begin()
	tx.Assert("Flies", "Paul").Deny("Flies", "GalapagosPenguin") // Patricia conflict remains
	err := tx.Commit()
	var ie *core.InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v", err)
	}
	after, _ := db.Snapshot("Flies")
	if len(after.Tuples()) != len(before) {
		t.Fatalf("rollback incomplete: %v", after.Tuples())
	}
	// Unknown relation mid-transaction also rolls back.
	tx2 := db.Begin()
	tx2.Assert("Flies", "Paul").Assert("Nope", "x")
	if err := tx2.Commit(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	after2, _ := db.Snapshot("Flies")
	if _, ok := after2.Lookup(core.Item{"Paul"}); ok {
		t.Fatal("partial transaction leaked")
	}
}

// TestTransactionFlipSign: a transaction can replace a tuple's sign.
func TestTransactionFlipSign(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Assert("Flies", "Penguin") // flip the − to +
	must(t, tx.Commit())
	got, err := db.Holds("Flies", "Paul")
	must(t, err)
	if !got {
		t.Fatal("after flip, penguins fly")
	}
}

// TestTxDoneAndRollback: reuse after finish is rejected.
func TestTxDoneAndRollback(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Assert("Flies", "Tweety")
	must(t, tx.Commit())
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("got %v", err)
	}
	tx2 := db.Begin()
	tx2.Assert("Flies", "Paul")
	if tx2.Len() != 1 {
		t.Fatal("Len wrong")
	}
	tx2.Rollback()
	if err := tx2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("got %v", err)
	}
	r, _ := db.Relation("Flies")
	if _, ok := r.Lookup(core.Item{"Paul"}); ok {
		t.Fatal("rolled-back op applied")
	}
}

// TestExceptionPolicies: forbid blocks, warn records, allow is silent.
func TestExceptionPolicies(t *testing.T) {
	db := setupFlies(t)

	db.SetPolicy(ForbidExceptions)
	if err := db.Deny("Flies", "Tweety"); !errors.Is(err, ErrExceptionForbidden) {
		t.Fatalf("forbid: got %v", err)
	}

	db.SetPolicy(WarnExceptions)
	must(t, db.Deny("Flies", "Tweety"))
	w := db.Warnings()
	if len(w) != 1 || !strings.Contains(w[0], "Tweety") {
		t.Fatalf("warnings = %v", w)
	}
	if len(db.Warnings()) != 0 {
		t.Fatal("Warnings should clear")
	}

	db.SetPolicy(AllowExceptions)
	_, err := db.Retract("Flies", "Tweety")
	must(t, err)
	must(t, db.Deny("Flies", "Tweety"))
	if len(db.Warnings()) != 0 {
		t.Fatal("allow should not warn")
	}
	if db.Policy() != AllowExceptions {
		t.Fatal("Policy getter wrong")
	}
	for _, p := range []ExceptionPolicy{AllowExceptions, WarnExceptions, ForbidExceptions, ExceptionPolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// TestPolicyAppliesInTransactions too.
func TestPolicyAppliesInTransactions(t *testing.T) {
	db := setupFlies(t)
	db.SetPolicy(ForbidExceptions)
	tx := db.Begin()
	tx.Deny("Flies", "Tweety")
	if err := tx.Commit(); !errors.Is(err, ErrExceptionForbidden) {
		t.Fatalf("got %v", err)
	}
}

// TestRetractGuardsConsistency: removing a conflict-resolving tuple is
// rejected and rolled back.
func TestRetractGuardsConsistency(t *testing.T) {
	db := setupFlies(t)
	tx := db.Begin()
	tx.Deny("Flies", "GalapagosPenguin").Assert("Flies", "Patricia")
	must(t, tx.Commit())

	_, err := db.Retract("Flies", "Patricia")
	var ie *core.InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InconsistencyError", err)
	}
	r, _ := db.Relation("Flies")
	if _, ok := r.Lookup(core.Item{"Patricia"}); !ok {
		t.Fatal("resolving tuple lost despite rejection")
	}
	// Retracting a non-existent tuple is a no-op.
	removed, err := db.Retract("Flies", "Tweety")
	must(t, err)
	if removed {
		t.Fatal("phantom retract")
	}
	if _, err := db.Retract("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestConsolidateAndExplicate mutate in place.
func TestConsolidateAndExplicate(t *testing.T) {
	db := setupFlies(t)
	must(t, db.Assert("Flies", "Tweety")) // redundant under Bird+
	removed, err := db.Consolidate("Flies")
	must(t, err)
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	must(t, db.Explicate("Flies"))
	r, _ := db.Relation("Flies")
	for _, tu := range r.Tuples() {
		if !r.IsAtomic(tu.Item) {
			t.Fatalf("non-atomic after explicate: %v", tu)
		}
	}
	if _, err := db.Consolidate("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := db.Explicate("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestSnapshotIsolation: snapshots do not see later writes.
func TestSnapshotIsolation(t *testing.T) {
	db := setupFlies(t)
	snap, err := db.Snapshot("Flies")
	must(t, err)
	must(t, db.Assert("Flies", "Tweety"))
	if _, ok := snap.Lookup(core.Item{"Tweety"}); ok {
		t.Fatal("snapshot saw a later write")
	}
	if _, err := db.Snapshot("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestDropRelation removes and rejects missing.
func TestDropRelation(t *testing.T) {
	db := setupFlies(t)
	must(t, db.DropRelation("Flies"))
	if err := db.DropRelation("Flies"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

// TestConcurrentReadersAndWriters: smoke test under the race detector.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db := setupFlies(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				if i%2 == 0 {
					_, _ = db.Holds("Flies", "Tweety")
					_, _ = db.Snapshot("Flies")
				} else {
					_ = db.Assert("Flies", "Peter")
					_, _ = db.Retract("Flies", "Peter")
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestIndexStatsAndWarmIndexes(t *testing.T) {
	db := setupFlies(t)
	if _, err := db.IndexStats("Nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("IndexStats(Nope) = %v, want ErrNotFound", err)
	}
	stats, err := db.IndexStats("Flies")
	must(t, err)
	if len(stats) != 1 || stats[0].Attr != "Creature" {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Tuples != 3 || stats[0].Distinct != 3 {
		t.Fatalf("stats[0] = %+v, want 3 tuples over 3 distinct values", stats[0])
	}
	if stats[0].Warm {
		t.Fatal("fresh database reported a warm label index")
	}
	db.WarmIndexes()
	stats, err = db.IndexStats("Flies")
	must(t, err)
	if !stats[0].Warm {
		t.Fatal("WarmIndexes did not warm the label index")
	}
}
