package catalog

import (
	"context"
	"errors"
	"testing"

	"hrdb/internal/core"
)

// TestDatabaseEvaluateBatch: the database-level batch entry points agree
// with per-item Evaluate and reject unknown relations.
func TestDatabaseEvaluateBatch(t *testing.T) {
	db, names := setupFlock(t, 8)
	must(t, db.Deny("Flies", names[3]))
	items := make([]core.Item, len(names))
	for i, n := range names {
		items[i] = core.Item{n}
	}
	vs, err := db.EvaluateBatch(context.Background(), "Flies", items)
	must(t, err)
	holds, err := db.HoldsBatch(context.Background(), "Flies", items)
	must(t, err)
	for i, it := range items {
		want, err := db.Evaluate("Flies", it...)
		must(t, err)
		if vs[i].Value != want.Value || holds[i] != want.Value {
			t.Fatalf("item %v: batch %v/%v, evaluate %v", it, vs[i].Value, holds[i], want.Value)
		}
	}
	if !holds[0] || holds[3] {
		t.Fatalf("verdicts %v: want flock true, denied instance false", holds)
	}
	if _, err := db.EvaluateBatch(context.Background(), "NoSuch", items); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown relation = %v, want ErrNotFound", err)
	}
}
