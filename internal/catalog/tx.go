package catalog

import (
	"fmt"

	"hrdb/internal/core"
)

// opKind is the kind of a staged transaction operation.
type opKind int

const (
	opInsert opKind = iota
	opRetract
)

// op is one staged update.
type op struct {
	kind opKind
	rel  string
	item core.Item
	sign bool
}

// undo records how to reverse an applied operation.
type undo struct {
	rel string
	// reinsert, when non-nil, is the tuple to restore; otherwise the item
	// is removed.
	remove   *core.Item
	reinsert *core.Tuple
}

// Tx is a transaction: updates are staged and applied atomically at Commit,
// where the ambiguity constraint is checked over every touched relation.
// This implements §3.1's rule that a conflict-creating update must be
// packaged with its resolving updates in one transaction.
//
// A Tx is not safe for concurrent use.
type Tx struct {
	db   *Database
	ops  []op
	done bool
}

// Begin starts a transaction.
func (db *Database) Begin() *Tx { return &Tx{db: db} }

// TxOp is a serializable description of one transactional update, used by
// layers (query language, write-ahead log) that stage operations before
// applying them through a transaction.
type TxOp struct {
	Kind     string // "assert" | "deny" | "retract"
	Relation string
	Values   []string
}

// ApplyOps runs the described operations in one transaction.
//
// ApplyOps is the replay contract of the storage layer's write-ahead log:
// a committed transaction is persisted as its TxOp list and re-applied here
// during crash recovery. It is deterministic — given equal database states,
// the same ops yield the same resulting state and the same accept/reject
// outcome — so replaying a logged commit cannot diverge from the original
// run. Either every operation takes effect and the ambiguity constraint
// holds over every touched relation, or the database is unchanged.
func (db *Database) ApplyOps(ops []TxOp) error {
	tx := db.Begin()
	for _, o := range ops {
		switch o.Kind {
		case "assert":
			tx.Assert(o.Relation, o.Values...)
		case "deny":
			tx.Deny(o.Relation, o.Values...)
		case "retract":
			tx.Retract(o.Relation, o.Values...)
		default:
			tx.Rollback()
			return fmt.Errorf("catalog: unknown tx op %q", o.Kind)
		}
	}
	return tx.Commit()
}

// Assert stages a positive tuple insertion.
func (tx *Tx) Assert(rel string, values ...string) *Tx {
	tx.ops = append(tx.ops, op{kind: opInsert, rel: rel, item: core.Item(values).Clone(), sign: true})
	return tx
}

// Deny stages a negated tuple insertion.
func (tx *Tx) Deny(rel string, values ...string) *Tx {
	tx.ops = append(tx.ops, op{kind: opInsert, rel: rel, item: core.Item(values).Clone(), sign: false})
	return tx
}

// Retract stages removal of the tuple on exactly the given item.
func (tx *Tx) Retract(rel string, values ...string) *Tx {
	tx.ops = append(tx.ops, op{kind: opRetract, rel: rel, item: core.Item(values).Clone()})
	return tx
}

// Len returns the number of staged operations.
func (tx *Tx) Len() int { return len(tx.ops) }

// Rollback discards the staged operations. Safe to call after Commit (it
// then does nothing).
func (tx *Tx) Rollback() {
	tx.done = true
	tx.ops = nil
}

// Commit applies all staged operations atomically: every operation is
// applied in order (with exception-policy checks), then every touched
// relation is checked for ambiguity conflicts. On any failure all applied
// operations are undone and the database is unchanged.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	db := tx.db
	db.mu.Lock()
	defer db.mu.Unlock()

	var undos []undo
	rollback := func() {
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			r := db.relations[u.rel]
			if u.remove != nil {
				r.Retract(*u.remove)
			}
			if u.reinsert != nil {
				// Reinsertion of a previously present tuple cannot fail.
				if err := r.Insert(u.reinsert.Item, u.reinsert.Sign); err != nil {
					panic(fmt.Sprintf("catalog: rollback reinsert failed: %v", err))
				}
			}
		}
	}

	touched := map[string]bool{}
	for _, o := range tx.ops {
		r, ok := db.relations[o.rel]
		if !ok {
			rollback()
			return fmt.Errorf("%w: relation %q", ErrNotFound, o.rel)
		}
		touched[o.rel] = true
		switch o.kind {
		case opInsert:
			// Within a transaction the exception policy still applies, but
			// tuple-level contradictions (same item, opposite sign) are
			// treated as a replacement so a transaction can flip a sign.
			if old, present := r.Lookup(o.item); present {
				if old.Sign == o.sign {
					continue
				}
				r.Retract(o.item)
				undos = append(undos, undo{rel: o.rel, reinsert: &core.Tuple{Item: old.Item, Sign: old.Sign}})
			}
			if err := db.checkException(r, o.item, o.sign); err != nil {
				rollback()
				return err
			}
			if err := r.Insert(o.item, o.sign); err != nil {
				rollback()
				return err
			}
			it := o.item.Clone()
			undos = append(undos, undo{rel: o.rel, remove: &it})
		case opRetract:
			if old, present := r.Lookup(o.item); present {
				r.Retract(o.item)
				undos = append(undos, undo{rel: o.rel, reinsert: &core.Tuple{Item: old.Item, Sign: old.Sign}})
			}
		}
	}

	// Ambiguity constraint over every touched relation.
	for rel := range touched {
		if err := db.relations[rel].CheckConsistency(); err != nil {
			rollback()
			return err
		}
	}
	return nil
}
