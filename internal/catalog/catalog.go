// Package catalog provides the database layer of the hierarchical
// relational model: a synchronized registry of named hierarchies and
// relations, the exception policies of §2.1 of the paper (a front end may
// freely permit exceptions, issue warnings, or prevent them), and
// transactions whose commit enforces the ambiguity constraint of §3.1 —
// "whenever an update is made we require that the update does not create an
// unresolved conflict; if an update creates a conflict, within the same
// transaction, before the update is committed, other updates must be made
// that resolve the conflict."
package catalog

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// Sentinel errors of the catalog package.
var (
	// ErrExists indicates a duplicate hierarchy or relation name.
	ErrExists = errors.New("catalog: already exists")
	// ErrNotFound indicates a missing hierarchy or relation.
	ErrNotFound = errors.New("catalog: not found")
	// ErrExceptionForbidden indicates an update that would override an
	// inherited value while the policy is ForbidExceptions.
	ErrExceptionForbidden = errors.New("catalog: exception forbidden by policy")
	// ErrTxDone indicates use of a committed or rolled-back transaction.
	ErrTxDone = errors.New("catalog: transaction already finished")
)

// ExceptionPolicy selects how the database treats updates that override an
// inherited value (§2.1).
type ExceptionPolicy int

const (
	// AllowExceptions freely permits exceptions (the default).
	AllowExceptions ExceptionPolicy = iota
	// WarnExceptions permits exceptions but records a warning for each.
	WarnExceptions
	// ForbidExceptions rejects any update that contradicts an inherited
	// value — turning generalizations into hard integrity constraints.
	ForbidExceptions
)

// String names the policy.
func (p ExceptionPolicy) String() string {
	switch p {
	case AllowExceptions:
		return "allow"
	case WarnExceptions:
		return "warn"
	case ForbidExceptions:
		return "forbid"
	default:
		return fmt.Sprintf("ExceptionPolicy(%d)", int(p))
	}
}

// Database is a synchronized collection of hierarchies and hierarchical
// relations with integrity enforcement. The zero value is not usable; call
// New.
type Database struct {
	mu          sync.RWMutex
	hierarchies map[string]*hierarchy.Hierarchy
	relations   map[string]*core.Relation
	policy      ExceptionPolicy
	warnings    []string
}

// New creates an empty database with AllowExceptions policy.
func New() *Database {
	return &Database{
		hierarchies: map[string]*hierarchy.Hierarchy{},
		relations:   map[string]*core.Relation{},
	}
}

// SetPolicy selects the exception policy for subsequent updates.
func (db *Database) SetPolicy(p ExceptionPolicy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.policy = p
}

// Policy returns the current exception policy.
func (db *Database) Policy() ExceptionPolicy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.policy
}

// Warnings returns and clears the accumulated exception warnings.
func (db *Database) Warnings() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	w := db.warnings
	db.warnings = nil
	return w
}

// CreateHierarchy registers a new domain hierarchy and returns it.
func (db *Database) CreateHierarchy(domain string) (*hierarchy.Hierarchy, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.hierarchies[domain]; ok {
		return nil, fmt.Errorf("%w: hierarchy %q", ErrExists, domain)
	}
	h := hierarchy.New(domain)
	db.hierarchies[domain] = h
	return h, nil
}

// AttachHierarchy registers an externally built hierarchy (used by the
// storage package during recovery).
func (db *Database) AttachHierarchy(h *hierarchy.Hierarchy) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.hierarchies[h.Domain()]; ok {
		return fmt.Errorf("%w: hierarchy %q", ErrExists, h.Domain())
	}
	db.hierarchies[h.Domain()] = h
	return nil
}

// Hierarchy returns the named hierarchy.
func (db *Database) Hierarchy(domain string) (*hierarchy.Hierarchy, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h, ok := db.hierarchies[domain]
	if !ok {
		return nil, fmt.Errorf("%w: hierarchy %q", ErrNotFound, domain)
	}
	return h, nil
}

// Hierarchies returns the registered domain names, sorted.
func (db *Database) Hierarchies() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.hierarchies))
	for d := range db.hierarchies {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// AttrSpec names one relation attribute and its domain hierarchy.
type AttrSpec struct {
	Name   string
	Domain string
}

// CreateRelation registers a new relation over previously created
// hierarchies.
func (db *Database) CreateRelation(name string, attrs ...AttrSpec) (*core.Relation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.relations[name]; ok {
		return nil, fmt.Errorf("%w: relation %q", ErrExists, name)
	}
	cattrs := make([]core.Attribute, len(attrs))
	for i, a := range attrs {
		h, ok := db.hierarchies[a.Domain]
		if !ok {
			return nil, fmt.Errorf("%w: hierarchy %q", ErrNotFound, a.Domain)
		}
		cattrs[i] = core.Attribute{Name: a.Name, Domain: h}
	}
	s, err := core.NewSchema(cattrs...)
	if err != nil {
		return nil, err
	}
	r := core.NewRelation(name, s)
	db.relations[name] = r
	return r, nil
}

// AttachRelation registers an externally built relation (storage recovery).
// Its schema's hierarchies must already be attached.
func (db *Database) AttachRelation(r *core.Relation) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.relations[r.Name()]; ok {
		return fmt.Errorf("%w: relation %q", ErrExists, r.Name())
	}
	db.relations[r.Name()] = r
	return nil
}

// DropRelation removes a relation.
func (db *Database) DropRelation(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.relations[name]; !ok {
		return fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	delete(db.relations, name)
	return nil
}

// Relation returns the named live relation. Callers must not mutate it
// directly; use Assert/Deny/Retract or a transaction so integrity and
// policy checks run.
func (db *Database) Relation(name string) (*core.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return r, nil
}

// Relations returns the relation names, sorted.
func (db *Database) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.relations))
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns an isolated deep copy of a relation for lock-free
// reading.
func (db *Database) Snapshot(name string) (*core.Relation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return r.Clone(), nil
}

// IndexStats returns the per-column secondary-index statistics of a
// relation (cardinality, distinct stored values, label-index warmth) — the
// inputs the algebra cost model plans from.
func (db *Database) IndexStats(name string) ([]core.IndexStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	return r.Stats(), nil
}

// WarmIndexes eagerly builds the O(1) subsumption label indexes of every
// hierarchy in the database, so a following query burst starts with warm
// indexes instead of paying the build inside its first scans. Typically
// called after a bulk load or on server start.
func (db *Database) WarmIndexes() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, h := range db.hierarchies {
		h.Warm()
	}
}

// checkException applies the exception policy to an insertion, returning an
// error under ForbidExceptions and recording a warning under
// WarnExceptions. An exception is an update whose sign contradicts the
// item's currently inherited (non-default) value.
func (db *Database) checkException(r *core.Relation, item core.Item, sign bool) error {
	v, err := r.Evaluate(item)
	if err != nil {
		// The relation is already in conflict at this item; the insertion
		// itself may be the resolution, so let it through.
		return nil
	}
	if v.Default || v.Exact || v.Value == sign {
		return nil
	}
	switch db.policy {
	case ForbidExceptions:
		return fmt.Errorf("%w: %v with sign %v contradicts inherited value %v in %q",
			ErrExceptionForbidden, item, sign, v.Value, r.Name())
	case WarnExceptions:
		db.warnings = append(db.warnings,
			fmt.Sprintf("exception: %v asserted %v against inherited %v in %q",
				item, sign, v.Value, r.Name()))
	}
	return nil
}

// insertLocked performs a policy-checked insert; the caller holds db.mu.
func (db *Database) insertLocked(rel string, item core.Item, sign bool) error {
	r, ok := db.relations[rel]
	if !ok {
		return fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	if err := db.checkException(r, item, sign); err != nil {
		return err
	}
	return r.Insert(item, sign)
}

// Assert inserts a positive tuple, enforcing the exception policy and the
// ambiguity constraint: if the insertion creates an unresolved conflict it
// is rolled back and the InconsistencyError returned (use a transaction to
// batch the update with its conflict resolution).
func (db *Database) Assert(rel string, values ...string) error {
	return db.update(rel, core.Item(values), true)
}

// Deny inserts a negated tuple under the same rules as Assert.
func (db *Database) Deny(rel string, values ...string) error {
	return db.update(rel, core.Item(values), false)
}

func (db *Database) update(rel string, item core.Item, sign bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.insertLocked(rel, item, sign); err != nil {
		return err
	}
	r := db.relations[rel]
	if err := r.CheckConsistency(); err != nil {
		r.Retract(item)
		return err
	}
	return nil
}

// Retract removes the tuple on exactly the given item.
func (db *Database) Retract(rel string, values ...string) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.relations[rel]
	if !ok {
		return false, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	item := core.Item(values)
	old, present := r.Lookup(item)
	if !present {
		return false, nil
	}
	r.Retract(item)
	// A retraction can expose a previously resolved conflict (§3.2: a
	// conflict-resolving tuple cannot simply be removed).
	if err := r.CheckConsistency(); err != nil {
		if rerr := r.Insert(old.Item, old.Sign); rerr != nil {
			return false, rerr
		}
		return false, err
	}
	return true, nil
}

// Holds evaluates an atomic query under a read lock.
func (db *Database) Holds(rel string, values ...string) (bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[rel]
	if !ok {
		return false, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	return r.Holds(values...)
}

// Evaluate runs a full evaluation under a read lock.
func (db *Database) Evaluate(rel string, values ...string) (core.Verdict, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[rel]
	if !ok {
		return core.Verdict{}, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	return r.Evaluate(core.Item(values))
}

// EvaluateBatch bulk-evaluates many items against one relation under a
// single read lock, fanning the work across cores (core.EvaluateBatch).
// Writers are excluded for the duration of the batch, so the verdicts are a
// consistent snapshot.
func (db *Database) EvaluateBatch(ctx context.Context, rel string, items []core.Item, opts ...core.BatchOption) ([]core.Verdict, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[rel]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	return r.EvaluateBatch(ctx, items, opts...)
}

// HoldsBatch is EvaluateBatch reduced to closed-world truth values.
func (db *Database) HoldsBatch(ctx context.Context, rel string, items []core.Item, opts ...core.BatchOption) ([]bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.relations[rel]
	if !ok {
		return nil, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	return r.HoldsBatch(ctx, items, opts...)
}

// Consolidate replaces the named relation with its consolidated form and
// returns the number of tuples removed.
func (db *Database) Consolidate(rel string) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.relations[rel]
	if !ok {
		return 0, fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	c := r.Consolidate()
	removed := r.Len() - c.Len()
	db.relations[rel] = c
	return removed, nil
}

// ErrInUse indicates a hierarchy node referenced by stored tuples.
var ErrInUse = errors.New("catalog: node referenced by tuples")

// DropNode removes a childless hierarchy node after verifying no stored
// tuple references it — the referential-integrity side of schema
// evolution. (Removing a node only shrinks relation extensions; tuples
// that name it would dangle, so they must be retracted first.)
func (db *Database) DropNode(domain, name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	h, ok := db.hierarchies[domain]
	if !ok {
		return fmt.Errorf("%w: hierarchy %q", ErrNotFound, domain)
	}
	for _, rname := range db.relationNamesLocked() {
		r := db.relations[rname]
		s := r.Schema()
		for i := 0; i < s.Arity(); i++ {
			if s.Attr(i).Domain != h {
				continue
			}
			for _, t := range r.Tuples() {
				if t.Item[i] == name {
					return fmt.Errorf("%w: %q in relation %q", ErrInUse, name, rname)
				}
			}
		}
	}
	return h.RemoveLeaf(name)
}

// relationNamesLocked returns relation names sorted; caller holds db.mu.
func (db *Database) relationNamesLocked() []string {
	out := make([]string, 0, len(db.relations))
	for n := range db.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetMode switches a relation's preemption semantics (paper appendix).
func (db *Database) SetMode(rel string, mode core.Preemption) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.relations[rel]
	if !ok {
		return fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	r.SetMode(mode)
	return nil
}

// Explicate replaces the named relation with its explication over the given
// attributes (all when none are named).
func (db *Database) Explicate(rel string, attrs ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	r, ok := db.relations[rel]
	if !ok {
		return fmt.Errorf("%w: relation %q", ErrNotFound, rel)
	}
	e, err := r.Explicate(attrs...)
	if err != nil {
		return err
	}
	db.relations[rel] = e
	return nil
}
