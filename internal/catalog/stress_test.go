package catalog

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hrdb/internal/core"
)

// setupFlock builds a database with one Bird class and n instances, plus a
// Flies relation asserting Bird.
func setupFlock(t *testing.T, n int) (*Database, []string) {
	t.Helper()
	db := New()
	h, err := db.CreateHierarchy("Animal")
	must(t, err)
	must(t, h.AddClass("Bird"))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("b%02d", i)
		must(t, h.AddInstance(names[i], "Bird"))
	}
	_, err = db.CreateRelation("Flies", AttrSpec{Name: "Creature", Domain: "Animal"})
	must(t, err)
	must(t, db.Assert("Flies", "Bird"))
	return db, names
}

// TestStressParallelHoldsAssert runs writers (Deny/Retract on their own
// instance) against readers (Holds on random instances) over one relation.
// Under -race this proves the database's locking plus the relation's
// internal verdict cache and hierarchy memos are safe under a read/write
// mix. Answers are also checked for staleness: a reader must never observe
// a verdict contradicting the tuple set at observation time — b's own
// writer is the only mutator, so after its final Retract the flock answer
// must return to true.
func TestStressParallelHoldsAssert(t *testing.T) {
	db, names := setupFlock(t, 8)
	const rounds = 50
	var wg sync.WaitGroup

	// Writers: each toggles a deny tuple on its own instance.
	for _, name := range names[:4] {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := db.Deny("Flies", name); err != nil {
					t.Errorf("deny %s: %v", name, err)
					return
				}
				if _, err := db.Retract("Flies", name); err != nil {
					t.Errorf("retract %s: %v", name, err)
					return
				}
			}
		}(name)
	}

	// Readers: random point queries across the flock.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds*4; i++ {
				name := names[rng.Intn(len(names))]
				if _, err := db.Holds("Flies", name); err != nil {
					t.Errorf("holds %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: every toggle ended with a retract, so the whole flock flies.
	for _, name := range names {
		v, err := db.Holds("Flies", name)
		must(t, err)
		if !v {
			t.Fatalf("stale verdict after stress: %s should fly", name)
		}
	}
}

// TestStressParallelBatchReaders drives concurrent HoldsBatch/EvaluateBatch
// readers — each holding the database read lock while fanning out its own
// worker pool — alongside snapshot readers.
func TestStressParallelBatchReaders(t *testing.T) {
	db, names := setupFlock(t, 16)
	must(t, db.Deny("Flies", names[3]))
	items := make([]core.Item, len(names))
	for i, n := range names {
		items[i] = core.Item{n}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				vals, err := db.HoldsBatch(context.Background(), "Flies", items,
					core.WithParallelism(1+w%4))
				if err != nil {
					t.Errorf("batch: %v", err)
					return
				}
				for j, v := range vals {
					want := j != 3
					if v != want {
						t.Errorf("batch verdict %s = %v, want %v", names[j], v, want)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := db.Snapshot("Flies"); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
