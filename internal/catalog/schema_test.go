package catalog

import (
	"errors"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
)

// TestDropNode: the referential-integrity rules.
func TestDropNode(t *testing.T) {
	db := setupFlies(t)
	// Referenced by the AFP tuple: refuse.
	if err := db.DropNode("Animal", "AmazingFlyingPenguin"); !errors.Is(err, ErrInUse) {
		t.Fatalf("got %v", err)
	}
	// Unreferenced leaf: drops.
	must(t, db.DropNode("Animal", "Paul"))
	h, _ := db.Hierarchy("Animal")
	if h.Has("Paul") {
		t.Fatal("Paul survived")
	}
	// Non-leaf (Canary has Tweety, and no tuple of its own): hierarchy
	// refuses.
	if err := db.DropNode("Animal", "Canary"); !errors.Is(err, hierarchy.ErrHasChildren) {
		t.Fatalf("got %v", err)
	}
	// Root refuses.
	if err := db.DropNode("Animal", "Animal"); !errors.Is(err, hierarchy.ErrIsRoot) {
		t.Fatalf("got %v", err)
	}
	// Unknown hierarchy and node.
	if err := db.DropNode("Nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if err := db.DropNode("Animal", "Ghost"); !errors.Is(err, hierarchy.ErrUnknown) {
		t.Fatalf("got %v", err)
	}
}

// TestDropNodeRemovesPreferences: preference edges touching the node go too.
func TestDropNodeRemovesPreferences(t *testing.T) {
	db := setupFlies(t)
	h, _ := db.Hierarchy("Animal")
	must(t, h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"))
	// Tweety is unreferenced; prefer edges don't involve it: drop fine.
	must(t, db.DropNode("Animal", "Tweety"))
	if len(h.Preferences()) != 1 {
		t.Fatal("unrelated preference lost")
	}
	// Retract the AFP tuple so the node is unreferenced, then empty it.
	_, err := db.Retract("Flies", "AmazingFlyingPenguin")
	must(t, err)
	for _, inst := range []string{"Patricia", "Pamela", "Peter"} {
		must(t, db.DropNode("Animal", inst))
	}
	must(t, db.DropNode("Animal", "AmazingFlyingPenguin"))
	if len(h.Preferences()) != 0 {
		t.Fatalf("preference touching dropped node survived: %v", h.Preferences())
	}
}

// TestSetModeCatalog.
func TestSetModeCatalog(t *testing.T) {
	db := setupFlies(t)
	must(t, db.SetMode("Flies", core.OnPath))
	r, _ := db.Relation("Flies")
	if r.Mode() != core.OnPath {
		t.Fatalf("mode = %v", r.Mode())
	}
	if err := db.SetMode("Nope", core.OffPath); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}
