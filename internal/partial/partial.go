// Package partial implements the first future-work direction of §4 of
// Jagadish (SIGMOD '89): "through the use of existential rather than
// universal quantifiers, and the use of three-valued (positive, negative,
// and unknown) rather than two-valued assertions, it may be possible to
// have a sound and conceptually pleasing treatment of partial information."
//
// A partial.Relation pairs a hierarchical relation (whose tuples quantify
// universally, as in the paper's core model) with existential assertions:
// ∃(C) states that at least one member of C satisfies the relation, without
// saying which. Queries come in two forms, both three-valued:
//
//   - HoldsEvery(item): does the relation hold for every member? This is
//     the open-world reading of the universal layer (tvl).
//   - HoldsSome(item): does the relation hold for at least one member?
//     True when a witness is derivable (an atom under the item evaluates
//     true, or an existential assertion's class is contained in the item);
//     False when every atom under the item is explicitly false and no
//     existential assertion could place its witness inside; Unknown
//     otherwise.
package partial

import (
	"fmt"
	"sort"

	"hrdb/internal/core"
	"hrdb/internal/tvl"
)

// maxWitnessScan bounds the atom enumeration used by HoldsSome.
const maxWitnessScan = 1 << 16

// Relation is a hierarchical relation with existential assertions.
type Relation struct {
	base *core.Relation
	// some holds the existential assertions, keyed canonically.
	some map[string]core.Item
}

// New wraps a hierarchical relation. The base relation remains usable
// directly; existential assertions live only in this wrapper.
func New(base *core.Relation) *Relation {
	return &Relation{base: base, some: map[string]core.Item{}}
}

// Base returns the underlying universal relation.
func (r *Relation) Base() *core.Relation { return r.base }

// AssertSome records "at least one member of item satisfies the relation".
// The item may be composite (classes) or atomic (in which case it is
// equivalent to a universal positive tuple on that atom, but remains a
// weaker, existential fact here).
func (r *Relation) AssertSome(values ...string) error {
	item := core.Item(values).Clone()
	// Validate against the base relation's schema.
	if _, err := r.base.Evaluate(item); err != nil {
		if _, conflict := err.(*core.ConflictError); !conflict {
			return err
		}
	}
	r.some[item.Key()] = item
	return nil
}

// RetractSome removes an existential assertion.
func (r *Relation) RetractSome(values ...string) bool {
	k := core.Item(values).Key()
	_, ok := r.some[k]
	delete(r.some, k)
	return ok
}

// Existentials returns the existential assertions, sorted.
func (r *Relation) Existentials() []core.Item {
	keys := make([]string, 0, len(r.some))
	for k := range r.some {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]core.Item, len(keys))
	for i, k := range keys {
		out[i] = r.some[k]
	}
	return out
}

// HoldsEvery is the three-valued universal query: true iff the relation is
// known to hold for every member of the item, false iff known not to hold
// for every member (some member is known-false… no: the universal reading
// of the paper's tuples is per-item binding), unknown when no tuple
// applies. Existential assertions never strengthen a universal answer.
func (r *Relation) HoldsEvery(values ...string) (tvl.Truth, error) {
	return tvl.Evaluate(r.base, core.Item(values))
}

// HoldsSome is the three-valued existential query over the members of the
// item.
func (r *Relation) HoldsSome(values ...string) (tvl.Truth, error) {
	item := core.Item(values)
	s := r.base.Schema()
	if len(item) != s.Arity() {
		return tvl.Unknown, fmt.Errorf("%w: item %v", core.ErrArity, item)
	}

	// An existential assertion contained in the item supplies a witness.
	for _, e := range r.Existentials() {
		if r.base.Subsumes(item, e) {
			return tvl.True, nil
		}
	}

	// Scan the atoms under the item: any true atom is a witness; if every
	// atom is known-false the answer can be false.
	var pools [][]string
	size := 1
	for i := 0; i < s.Arity(); i++ {
		leaves := s.Attr(i).Domain.Leaves(item[i])
		if len(leaves) == 0 {
			return tvl.Unknown, fmt.Errorf("%w: %q", core.ErrUnknownValue, item[i])
		}
		pools = append(pools, leaves)
		size *= len(pools[i])
		if size > maxWitnessScan {
			return tvl.Unknown, fmt.Errorf("%w: existential scan over %v needs %d atoms",
				core.ErrTooLarge, item, size)
		}
	}
	allFalse := true
	var scan func(prefix core.Item, i int) (tvl.Truth, error)
	scan = func(prefix core.Item, i int) (tvl.Truth, error) {
		if i == s.Arity() {
			v, err := tvl.Evaluate(r.base, prefix.Clone())
			if err != nil {
				return tvl.Unknown, err
			}
			if v == tvl.True {
				return tvl.True, nil
			}
			if v != tvl.False {
				allFalse = false
			}
			return tvl.Unknown, nil
		}
		for _, n := range pools[i] {
			v, err := scan(append(prefix, n), i+1)
			if err != nil || v == tvl.True {
				return v, err
			}
		}
		return tvl.Unknown, nil
	}
	v, err := scan(make(core.Item, 0, s.Arity()), 0)
	if err != nil || v == tvl.True {
		return v, err
	}

	if allFalse {
		// Every atom is explicitly false; an existential assertion merely
		// overlapping the item could still have its witness outside, so it
		// does not weaken this answer — but one *contained* would have
		// returned True above, and one overlapping contradicts nothing.
		// However, an existential overlapping the item may place its
		// witness inside, contradicting all-false: report Unknown then
		// (the database holds conflicting partial information).
		for _, e := range r.Existentials() {
			if r.overlaps(e, item) {
				return tvl.Unknown, nil
			}
		}
		return tvl.False, nil
	}
	return tvl.Unknown, nil
}

// overlaps reports componentwise overlap of two items.
func (r *Relation) overlaps(a, b core.Item) bool {
	s := r.base.Schema()
	for i := range a {
		if !s.Attr(i).Domain.Overlaps(a[i], b[i]) {
			return false
		}
	}
	return true
}
