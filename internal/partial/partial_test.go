package partial

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
	"hrdb/internal/tvl"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// fixture: birds fly, penguins don't; swans unknown.
func fixture(t *testing.T) *Relation {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddInstance("Paul", "Penguin"))
	must(t, h.AddInstance("Pete", "Penguin"))
	must(t, h.AddInstance("Tweety", "Bird"))
	must(t, h.AddClass("Swan"))
	must(t, h.AddInstance("Sally", "Swan"))
	must(t, h.AddInstance("Simon", "Swan"))
	s := core.MustSchema(core.Attribute{Name: "Creature", Domain: h})
	base := core.NewRelation("Flies", s)
	must(t, base.Assert("Bird"))
	must(t, base.Deny("Penguin"))
	return New(base)
}

func TestHoldsEveryIsOpenWorld(t *testing.T) {
	r := fixture(t)
	v, err := r.HoldsEvery("Tweety")
	must(t, err)
	if v != tvl.True {
		t.Fatalf("Tweety = %v", v)
	}
	v, err = r.HoldsEvery("Penguin")
	must(t, err)
	if v != tvl.False {
		t.Fatalf("Penguin = %v", v)
	}
	v, err = r.HoldsEvery("Swan")
	must(t, err)
	if v != tvl.Unknown {
		t.Fatalf("Swan = %v", v)
	}
}

func TestHoldsSomeWitnessFromUniversalLayer(t *testing.T) {
	r := fixture(t)
	// Some bird flies (Tweety is a known witness).
	v, err := r.HoldsSome("Bird")
	must(t, err)
	if v != tvl.True {
		t.Fatalf("some Bird = %v", v)
	}
	// No penguin flies: all atoms explicitly false.
	v, err = r.HoldsSome("Penguin")
	must(t, err)
	if v != tvl.False {
		t.Fatalf("some Penguin = %v", v)
	}
	// Swans: nothing known either way.
	v, err = r.HoldsSome("Swan")
	must(t, err)
	if v != tvl.Unknown {
		t.Fatalf("some Swan = %v", v)
	}
}

func TestExistentialAssertionSuppliesWitness(t *testing.T) {
	r := fixture(t)
	// ∃ swan that flies — without naming it.
	must(t, r.AssertSome("Swan"))
	v, err := r.HoldsSome("Swan")
	must(t, err)
	if v != tvl.True {
		t.Fatalf("some Swan = %v", v)
	}
	// The universal question stays unknown.
	v, err = r.HoldsEvery("Swan")
	must(t, err)
	if v != tvl.Unknown {
		t.Fatalf("every Swan = %v", v)
	}
	// Individual swans stay unknown too: the witness is anonymous.
	v, err = r.HoldsSome("Sally")
	must(t, err)
	if v != tvl.Unknown {
		t.Fatalf("some Sally = %v", v)
	}
	// The whole domain inherits the witness (Swan ⊆ Animal).
	v, err = r.HoldsSome("Animal")
	must(t, err)
	if v != tvl.True {
		t.Fatalf("some Animal = %v", v)
	}
}

func TestExistentialOverlappingAllFalseIsUnknown(t *testing.T) {
	r := fixture(t)
	// ∃ bird that flies, asserted at the Bird level: penguins are all
	// explicitly false, but the anonymous witness could be a penguin only
	// if the assertion overlapped Penguin — Bird does overlap Penguin, so
	// "some penguin flies" must stay Unknown rather than False.
	must(t, r.AssertSome("Bird"))
	v, err := r.HoldsSome("Penguin")
	must(t, err)
	if v != tvl.Unknown {
		t.Fatalf("some Penguin with overlapping ∃Bird = %v", v)
	}
	// Retract: back to False.
	if !r.RetractSome("Bird") {
		t.Fatal("retract failed")
	}
	if r.RetractSome("Bird") {
		t.Fatal("double retract")
	}
	v, err = r.HoldsSome("Penguin")
	must(t, err)
	if v != tvl.False {
		t.Fatalf("some Penguin = %v", v)
	}
}

func TestExistentialsAccessors(t *testing.T) {
	r := fixture(t)
	must(t, r.AssertSome("Swan"))
	must(t, r.AssertSome("Bird"))
	got := r.Existentials()
	if len(got) != 2 {
		t.Fatalf("existentials = %v", got)
	}
	if r.Base() == nil {
		t.Fatal("Base nil")
	}
}

func TestValidationErrors(t *testing.T) {
	r := fixture(t)
	if err := r.AssertSome("NotAThing"); err == nil {
		t.Fatal("unknown value accepted")
	}
	if _, err := r.HoldsSome("a", "b"); !errors.Is(err, core.ErrArity) {
		t.Fatalf("got %v", err)
	}
	if _, err := r.HoldsSome("NotAThing"); err == nil {
		t.Fatal("unknown value accepted in query")
	}
}

// TestPropertyHoldsSomeSound: HoldsSome never answers True without a
// derivable witness and never answers False when a witness exists, on
// random relations with random existential assertions.
func TestPropertyHoldsSomeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 40; trial++ {
		h := hierarchy.New("D")
		must(t, h.AddClass("C1"))
		must(t, h.AddClass("C2"))
		must(t, h.AddClass("C12", "C1", "C2"))
		for i := 0; i < 6; i++ {
			parent := []string{"C1", "C2", "C12"}[rng.Intn(3)]
			must(t, h.AddInstance(fmt.Sprintf("x%d", i), parent))
		}
		s := core.MustSchema(core.Attribute{Name: "X", Domain: h})
		base := core.NewRelation("R", s)
		nodes := h.Nodes()
		for n := 0; n < 3; n++ {
			item := core.Item{nodes[rng.Intn(len(nodes))]}
			_ = base.Insert(item, rng.Intn(2) == 0)
		}
		if len(base.Conflicts()) > 0 {
			continue
		}
		r := New(base)
		if rng.Intn(2) == 0 {
			_ = r.AssertSome(nodes[rng.Intn(len(nodes))])
		}

		for _, q := range nodes {
			v, err := r.HoldsSome(q)
			if err != nil {
				t.Fatalf("trial %d HoldsSome(%s): %v", trial, q, err)
			}
			// Brute-force the two bounds.
			witnessTrue := false
			allFalse := true
			for _, leaf := range h.Leaves(q) {
				lv, err := tvl.Evaluate(base, core.Item{leaf})
				must(t, err)
				if lv == tvl.True {
					witnessTrue = true
				}
				if lv != tvl.False {
					allFalse = false
				}
			}
			exContained := false
			exOverlap := false
			for _, e := range r.Existentials() {
				if h.Subsumes(q, e[0]) {
					exContained = true
				}
				if h.Overlaps(q, e[0]) {
					exOverlap = true
				}
			}
			switch v {
			case tvl.True:
				if !witnessTrue && !exContained {
					t.Fatalf("trial %d: HoldsSome(%s)=true without witness\ntuples %v ex %v",
						trial, q, base.Tuples(), r.Existentials())
				}
			case tvl.False:
				if witnessTrue || exContained || !allFalse || exOverlap {
					t.Fatalf("trial %d: HoldsSome(%s)=false unsoundly\ntuples %v ex %v",
						trial, q, base.Tuples(), r.Existentials())
				}
			}
		}
	}
}

// TestWitnessScanCap: the atom enumeration is bounded.
func TestWitnessScanCap(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("C"))
	for i := 0; i < 300; i++ {
		name := "i"
		for n := i; n > 0; n /= 26 {
			name += string(rune('a' + n%26))
		}
		must(t, h.AddInstance(name, "C"))
	}
	s := core.MustSchema(
		core.Attribute{Name: "A", Domain: h},
		core.Attribute{Name: "B", Domain: h},
	)
	base := core.NewRelation("R", s)
	r := New(base)
	if _, err := r.HoldsSome("C", "C"); !errors.Is(err, core.ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}
