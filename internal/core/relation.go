// Package core implements the hierarchical relational model of
// H. V. Jagadish, "Incorporating Hierarchy in a Relational Model of Data"
// (SIGMOD 1989): relations whose attribute values may be classes drawn from
// per-domain hierarchies, with positive and negated tuples, inheritance with
// exceptions, conflict detection (the ambiguity constraint), and the two new
// operators the paper introduces, Consolidate and Explicate.
//
// Every hierarchical relation is equivalent to a unique flat relation — its
// extension — and all operations preserve that equivalence. Evaluate is the
// single source of truth for the model's semantics: it implements the
// paper's tuple-binding-graph rule under the three preemption semantics of
// the appendix (off-path, on-path, and no preemption).
package core

import (
	"fmt"
	"sort"
	"strings"

	"hrdb/internal/hierarchy"
)

// Attribute names one column of a relation and the hierarchy its values are
// drawn from.
type Attribute struct {
	Name   string
	Domain *hierarchy.Hierarchy
}

// Schema is an ordered list of attributes with unique names.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. Attribute names must
// be unique and non-empty, and every attribute needs a domain hierarchy.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: schema needs at least one attribute", ErrSchema)
	}
	s := &Schema{index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: attribute %d has an empty name", ErrSchema, i)
		}
		if a.Domain == nil {
			return nil, fmt.Errorf("%w: attribute %q has no domain hierarchy", ErrSchema, a.Name)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate attribute %q", ErrSchema, a.Name)
		}
		s.index[a.Name] = i
		s.attrs = append(s.attrs, a)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// examples with static schemas.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Names returns the attribute names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Equal reports whether two schemas have the same attribute names, in the
// same order, over the same hierarchy objects.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.attrs) != len(o.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i].Name != o.attrs[i].Name || s.attrs[i].Domain != o.attrs[i].Domain {
			return false
		}
	}
	return true
}

// Item is one hierarchy node name per attribute, in schema order. A node may
// be a class (the paper's ∀C values) or an instance; an item whose every
// coordinate is a hierarchy leaf is atomic.
type Item []string

// Key returns a canonical map key for the item. Node names never contain
// the separator byte.
func (it Item) Key() string { return strings.Join(it, "\x1f") }

// Equal reports componentwise equality.
func (it Item) Equal(o Item) bool {
	if len(it) != len(o) {
		return false
	}
	for i := range it {
		if it[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the item.
func (it Item) Clone() Item { return append(Item(nil), it...) }

// String renders the item as (a, b, …).
func (it Item) String() string { return "(" + strings.Join(it, ", ") + ")" }

// Tuple is an item together with its truth value: Sign true for a positive
// (normal) tuple, false for a negated tuple (§2.1).
type Tuple struct {
	Item Item
	Sign bool
}

// String renders the tuple with a +/− prefix, classes marked ∀.
func (t Tuple) String() string {
	sign := "+"
	if !t.Sign {
		sign = "-"
	}
	return sign + " " + t.Item.String()
}

// Relation is a hierarchical relation: a set of signed tuples over a schema.
// Relations are safe for concurrent reads but not concurrent mutation; the
// catalog package provides a synchronized layer.
type Relation struct {
	name   string
	schema *Schema
	tuples map[string]Tuple
	mode   Preemption

	// idx[i] buckets tuple keys by their i-th attribute value (a posting
	// list per stored class), so Applicable and the algebra planner can
	// probe the buckets of a query coordinate's ancestors — or of the
	// values overlapping a selection region — instead of scanning every
	// tuple. Maintained by Insert/Retract under the relation epoch.
	idx []map[string][]string

	// epoch counts mutations (Insert/Retract/SetMode); the verdict cache
	// stamps entries with it so no post-mutation read can be stale.
	epoch    uint64
	cache    *verdictCache
	cacheOff bool
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema *Schema) *Relation {
	idx := make([]map[string][]string, schema.Arity())
	for i := range idx {
		idx[i] = map[string][]string{}
	}
	return &Relation{
		name:   name,
		schema: schema,
		tuples: map[string]Tuple{},
		mode:   OffPath,
		idx:    idx,
		cache:  newVerdictCache(defaultCacheCap),
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of stored tuples (not the extension size).
func (r *Relation) Len() int { return len(r.tuples) }

// Mode returns the preemption semantics in force (§appendix).
func (r *Relation) Mode() Preemption { return r.mode }

// SetMode selects the preemption semantics used by Evaluate.
func (r *Relation) SetMode(m Preemption) {
	r.mode = m
	r.epoch++
}

// Epoch returns the relation's mutation counter. It increases on every
// Insert, Retract, and SetMode; two calls returning the same epoch bracket a
// window in which the stored tuples did not change.
func (r *Relation) Epoch() uint64 { return r.epoch }

// SetCache enables or disables the verdict memo cache. Disabling also drops
// any memoized verdicts. The cache is enabled by default.
func (r *Relation) SetCache(enabled bool) {
	r.cacheOff = !enabled
	if !enabled {
		r.cache.reset()
	}
}

// CacheEnabled reports whether the verdict memo cache is in use.
func (r *Relation) CacheEnabled() bool { return !r.cacheOff }

// CacheStats returns the verdict cache's cumulative hit and miss counters.
func (r *Relation) CacheStats() (hits, misses uint64) { return r.cache.stats() }

// stamp captures the relation and hierarchy state a verdict depends on: the
// relation's epoch, the sum of the attribute hierarchies' mutation
// generations, and the preemption mode.
func (r *Relation) stamp(mode Preemption) cacheStamp {
	var hgen uint64
	for _, a := range r.schema.attrs {
		hgen += a.Domain.Generation()
	}
	return cacheStamp{epoch: r.epoch, hgen: hgen, mode: mode}
}

// validateItem checks arity and that every coordinate names a node of its
// attribute's hierarchy.
func (r *Relation) validateItem(item Item) error {
	if len(item) != r.schema.Arity() {
		return fmt.Errorf("%w: item %v has arity %d, relation %q has %d",
			ErrArity, item, len(item), r.name, r.schema.Arity())
	}
	for i, v := range item {
		if !r.schema.attrs[i].Domain.Has(v) {
			return fmt.Errorf("%w: %q is not in domain %q of attribute %q",
				ErrUnknownValue, v, r.schema.attrs[i].Domain.Domain(), r.schema.attrs[i].Name)
		}
	}
	return nil
}

// Insert stores a tuple. Re-inserting an identical tuple is a no-op;
// inserting an item that is already present with the opposite sign returns
// ErrContradiction (use Retract first to flip a tuple's sign).
func (r *Relation) Insert(item Item, sign bool) error {
	if err := r.validateItem(item); err != nil {
		return err
	}
	k := item.Key()
	if old, ok := r.tuples[k]; ok {
		if old.Sign == sign {
			return nil
		}
		return fmt.Errorf("%w: item %v is already asserted with sign %v in %q",
			ErrContradiction, item, old.Sign, r.name)
	}
	r.tuples[k] = Tuple{Item: item.Clone(), Sign: sign}
	for i, v := range item {
		r.idx[i][v] = append(r.idx[i][v], k)
	}
	r.epoch++
	return nil
}

// Assert inserts a positive tuple (the relation holds for every element of
// the item).
func (r *Relation) Assert(values ...string) error { return r.Insert(Item(values), true) }

// Deny inserts a negated tuple (for every element of the item, the relation
// does not hold).
func (r *Relation) Deny(values ...string) error { return r.Insert(Item(values), false) }

// Retract removes the tuple on exactly this item, reporting whether one was
// present.
func (r *Relation) Retract(item Item) bool {
	k := item.Key()
	_, ok := r.tuples[k]
	if !ok {
		return false
	}
	delete(r.tuples, k)
	for i, v := range item {
		bucket := r.idx[i][v]
		for j, bk := range bucket {
			if bk == k {
				r.idx[i][v] = append(bucket[:j], bucket[j+1:]...)
				break
			}
		}
		if len(r.idx[i][v]) == 0 {
			delete(r.idx[i], v)
		}
	}
	r.epoch++
	return true
}

// Lookup returns the tuple stored on exactly this item, if any.
func (r *Relation) Lookup(item Item) (Tuple, bool) {
	t, ok := r.tuples[item.Key()]
	return t, ok
}

// Tuples returns all tuples sorted by item key (deterministic).
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// Clone returns a deep copy of the relation (sharing the schema and
// hierarchies, which are treated as immutable by convention once relations
// are populated).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.name, r.schema)
	c.mode = r.mode
	c.cacheOff = r.cacheOff
	for k, t := range r.tuples {
		c.tuples[k] = Tuple{Item: t.Item.Clone(), Sign: t.Sign}
		for i, v := range t.Item {
			c.idx[i][v] = append(c.idx[i][v], k)
		}
	}
	return c
}

// WithName returns a shallow-renamed clone.
func (r *Relation) WithName(name string) *Relation {
	c := r.Clone()
	c.name = name
	return c
}

// Subsumes reports whether item a subsumes item b: componentwise, every
// coordinate of a is an is-a ancestor of (or equal to) the corresponding
// coordinate of b. In the never-materialized product hierarchy this is
// exactly "b is reachable from a" (§2.2).
func (r *Relation) Subsumes(a, b Item) bool {
	for i := range a {
		if !r.schema.attrs[i].Domain.Subsumes(a[i], b[i]) {
			return false
		}
	}
	return true
}

// StrictlySubsumes reports a ⊐ b.
func (r *Relation) StrictlySubsumes(a, b Item) bool {
	return !a.Equal(b) && r.Subsumes(a, b)
}

// BindSubsumes is Subsumes over the binding graphs (is-a plus preference
// edges); it orders tuples by binding strength but never defines
// membership.
func (r *Relation) BindSubsumes(a, b Item) bool {
	for i := range a {
		if !r.schema.attrs[i].Domain.BindSubsumes(a[i], b[i]) {
			return false
		}
	}
	return true
}

// IsAtomic reports whether every coordinate of the item is a hierarchy leaf.
func (r *Relation) IsAtomic(item Item) bool {
	for i, v := range item {
		if !r.schema.attrs[i].Domain.IsLeaf(v) {
			return false
		}
	}
	return true
}

// Applicable returns the tuples relevant to item: those whose items subsume
// it (including a tuple exactly on the item), sorted by item key. These are
// the nodes of the paper's tuple-binding graph for the item.
//
// A subsuming tuple's i-th coordinate is necessarily an ancestor of (or
// equal to) item[i], so probing any one attribute's ancestor buckets yields
// a superset of the answer; the probe uses whichever attribute's buckets
// are smallest, and the remaining coordinates are checked per candidate.
// (The ablation benchmark BenchmarkAblationIndexVsScan measures the win;
// applicableByScan is the reference implementation.)
func (r *Relation) Applicable(item Item) []Tuple {
	bestAttr := -1
	var bestProbes []string
	bestCost := len(r.tuples) + 1
	for i, a := range r.schema.attrs {
		if !a.Domain.Has(item[i]) {
			return nil
		}
		probes := append(a.Domain.Ancestors(item[i]), item[i])
		cost := 0
		for _, p := range probes {
			cost += len(r.idx[i][p])
		}
		if cost < bestCost {
			bestAttr, bestProbes, bestCost = i, probes, cost
		}
	}
	var out []Tuple
	for _, p := range bestProbes {
		for _, k := range r.idx[bestAttr][p] {
			t := r.tuples[k]
			if r.Subsumes(t.Item, item) {
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item.Key() < out[j].Item.Key() })
	return out
}

// applicableByScan is the index-free reference implementation of
// Applicable, kept for tests and the ablation benchmark.
func (r *Relation) applicableByScan(item Item) []Tuple {
	var out []Tuple
	for _, t := range r.Tuples() {
		if r.Subsumes(t.Item, item) {
			out = append(out, t)
		}
	}
	return out
}

// sortMostSpecificFirst orders tuples so that a tuple always precedes any
// tuple that strictly subsumes it (a reverse linear extension of the
// subsumption order), with a deterministic tie-break.
func (r *Relation) sortMostSpecificFirst(ts []Tuple) []Tuple {
	ordered := r.sortGeneralFirst(ts)
	for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
		ordered[i], ordered[j] = ordered[j], ordered[i]
	}
	return ordered
}

// sortGeneralFirst orders tuples so that a tuple always precedes any tuple
// it strictly subsumes (a linear extension of the subsumption order — the
// topological order over the subsumption graph used by Consolidate), with a
// deterministic tie-break by item key.
func (r *Relation) sortGeneralFirst(ts []Tuple) []Tuple {
	n := len(ts)
	// Kahn's algorithm over the strict-subsumption relation.
	adj := make([][]int, n) // adj[i] = indices strictly subsumed by i
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && r.StrictlySubsumes(ts[i].Item, ts[j].Item) {
				adj[i] = append(adj[i], j)
				indeg[j]++
			}
		}
	}
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	byKey := func(a, b int) bool { return ts[a].Item.Key() < ts[b].Item.Key() }
	sort.Slice(frontier, func(x, y int) bool { return byKey(frontier[x], frontier[y]) })
	out := make([]Tuple, 0, n)
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		out = append(out, ts[i])
		added := false
		for _, j := range adj[i] {
			indeg[j]--
			if indeg[j] == 0 {
				frontier = append(frontier, j)
				added = true
			}
		}
		if added {
			sort.Slice(frontier, func(x, y int) bool { return byKey(frontier[x], frontier[y]) })
		}
	}
	return out
}
