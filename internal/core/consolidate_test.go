package core

import (
	"reflect"
	"testing"

	"hrdb/internal/hierarchy"
)

// TestFigure6Consolidate reproduces the paper's consolidation of the
// Respects relation: processing in topological order, the negated tuple
// (Student, IncoherentTeacher) is redundant (its only predecessor is the
// universal negated tuple); after its removal the resolving tuple
// (ObsequiousStudent, IncoherentTeacher) becomes redundant too (its only
// remaining predecessor, (ObsequiousStudent, Teacher), is also positive).
// The result is the single tuple (ObsequiousStudent, Teacher).
func TestFigure6Consolidate(t *testing.T) {
	r := respectsRelation(t)
	c := r.Consolidate()
	got := c.Tuples()
	if len(got) != 1 {
		t.Fatalf("consolidated to %v, want exactly (ObsequiousStudent, Teacher)", got)
	}
	if !got[0].Item.Equal(Item{"ObsequiousStudent", "Teacher"}) || !got[0].Sign {
		t.Fatalf("got %v", got[0])
	}
	// Extension is unchanged ("has exactly the same extension … and yet has
	// fewer tuples in it").
	extBefore := extensionByEnumeration(t, r)
	extAfter := extensionByEnumeration(t, c)
	if !reflect.DeepEqual(extBefore, extAfter) {
		t.Fatalf("consolidation changed the extension:\nbefore %v\nafter  %v", extBefore, extAfter)
	}
	// The receiver was not modified.
	if r.Len() != 3 {
		t.Fatalf("Consolidate mutated its receiver: %d tuples", r.Len())
	}
}

// TestFigure6IntermediateRedundancy: before consolidation, the tuple
// (Student, IncoherentTeacher)− is redundant, and so is the conflict-
// resolving tuple (it is dominated by tuples of BOTH signs, so at first
// sight it is not redundant — only after the negated tuple is removed does
// it become so). RedundantTuples sees only the first.
func TestFigure6IntermediateRedundancy(t *testing.T) {
	r := respectsRelation(t)
	red := r.RedundantTuples()
	if len(red) != 1 || !red[0].Item.Equal(Item{"Student", "IncoherentTeacher"}) {
		t.Fatalf("RedundantTuples = %v, want the top-level negated tuple only", red)
	}
}

// TestConsolidateKeepsResolvingTuple (§3.2): a conflict-resolving tuple is
// NOT redundant while the conflicting tuples are both present — removing it
// would produce an inconsistent state. (In Fig. 6 it becomes removable only
// because the negated tuple is removed first; here we pin the negated tuple
// by making it irredundant.)
func TestConsolidateKeepsResolvingTuple(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "Student", Domain: studentHierarchy(t)},
		Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := NewRelation("Respects", s)
	// Make the negation non-top-level so it is not redundant: all students
	// respect all teachers, but no student respects an incoherent teacher,
	// except obsequious students do.
	must(t, r.Assert("Student", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))
	must(t, r.Assert("ObsequiousStudent", "IncoherentTeacher"))
	c := r.Consolidate()
	if c.Len() != 3 {
		t.Fatalf("consolidate removed needed tuples: %v", c.Tuples())
	}
	if err := c.CheckConsistency(); err != nil {
		t.Fatalf("consolidated relation inconsistent: %v", err)
	}
}

// TestTopLevelNegatedTupleRedundant: a negated tuple with no predecessor is
// redundant (its predecessor is the universal negated tuple).
func TestTopLevelNegatedTupleRedundant(t *testing.T) {
	r := fliesRelation(t)
	must(t, r.Deny("Canary")) // wait: Canary is under Bird+, not top-level
	// Canary's immediate pred is Bird+ (opposite sign): not redundant.
	for _, tu := range r.RedundantTuples() {
		if tu.Item.Equal(Item{"Canary"}) {
			t.Fatal("Canary− under Bird+ must not be redundant")
		}
	}
	// A brand-new relation with only a negated tuple: redundant.
	h := r.Schema().Attr(0).Domain
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r2 := NewRelation("R2", s)
	must(t, r2.Deny("Penguin"))
	red := r2.RedundantTuples()
	if len(red) != 1 || !red[0].Item.Equal(Item{"Penguin"}) {
		t.Fatalf("RedundantTuples = %v", red)
	}
	if got := r2.Consolidate().Len(); got != 0 {
		t.Fatalf("consolidated size = %d, want 0", got)
	}
}

// TestPositiveDuplicateUnderPositive: a positive tuple dominated by a
// positive tuple is redundant and removed (the paper's t1/t2 discussion in
// §3.2 — removal happens only on explicit Consolidate).
func TestPositiveDuplicateUnderPositive(t *testing.T) {
	r := fliesRelation(t)
	must(t, r.Assert("Tweety")) // dominated by Bird+
	if r.Len() != 5 {
		t.Fatal("assertion should coexist until consolidation (§3.2)")
	}
	c := r.Consolidate()
	if _, ok := c.Lookup(Item{"Tweety"}); ok {
		t.Fatal("Tweety+ should be consolidated away under Bird+")
	}
}

// TestFigure5UnionNotRedundant reproduces the paper's Figure 5: if A and B
// only jointly cover C, a tuple on C is NOT redundant given tuples on A and
// B — our model never removes it.
func TestFigure5UnionNotRedundant(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("A"))
	must(t, h.AddClass("B"))
	must(t, h.AddClass("C"))
	// C's members are split between A and B: c1 in A∩C, c2 in B∩C.
	must(t, h.AddInstance("c1", "A", "C"))
	must(t, h.AddInstance("c2", "B", "C"))
	s := MustSchema(Attribute{Name: "X", Domain: h})
	r := NewRelation("R", s)
	must(t, r.Assert("A"))
	must(t, r.Assert("B"))
	must(t, r.Assert("C"))
	c := r.Consolidate()
	if _, ok := c.Lookup(Item{"C"}); !ok {
		t.Fatal("tuple on C must survive consolidation (Fig. 5): neither A nor B alone dominates C")
	}
	if c.Len() != 3 {
		t.Fatalf("consolidated = %v", c.Tuples())
	}
}

// TestPartitionedClassNotRedundant (§3.2's final case): even when C is
// exactly partitioned by A and B with tuples on both, the tuple on C is not
// considered redundant by our data model (the model cannot express mutual
// exhaustion, and the C tuple stays meaningful if A's is later deleted).
func TestPartitionedClassNotRedundant(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("C"))
	must(t, h.AddClass("A", "C"))
	must(t, h.AddClass("B", "C"))
	must(t, h.AddInstance("a1", "A"))
	must(t, h.AddInstance("b1", "B"))
	s := MustSchema(Attribute{Name: "X", Domain: h})
	r := NewRelation("R", s)
	must(t, r.Assert("A"))
	must(t, r.Assert("B"))
	must(t, r.Assert("C"))
	c := r.Consolidate()
	// C survives; A and B are each dominated by C+ and are removed.
	if _, ok := c.Lookup(Item{"C"}); !ok {
		t.Fatal("C must survive")
	}
	if c.Len() != 1 {
		t.Fatalf("consolidated = %v, want only C", c.Tuples())
	}
}

// TestConsolidateIdempotent: consolidating twice changes nothing more.
func TestConsolidateIdempotent(t *testing.T) {
	r := respectsRelation(t)
	c1 := r.Consolidate()
	c2 := c1.Consolidate()
	if !reflect.DeepEqual(c1.Tuples(), c2.Tuples()) {
		t.Fatalf("not idempotent: %v vs %v", c1.Tuples(), c2.Tuples())
	}
}

// TestSubsumptionDOT: the DOT rendering is stable and names all tuples.
func TestSubsumptionDOT(t *testing.T) {
	r := respectsRelation(t)
	dot := r.SubsumptionDOT()
	if dot != r.SubsumptionDOT() {
		t.Fatal("SubsumptionDOT not deterministic")
	}
	for _, want := range []string{"digraph", "utop", "ObsequiousStudent", "->"} {
		if !contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestSubsumptionGraphFig6a checks the subsumption graph of the Respects
// relation: the universal negated tuple points at the two top-level tuples;
// the resolving tuple has BOTH broad tuples as immediate predecessors.
func TestSubsumptionGraphFig6a(t *testing.T) {
	r := respectsRelation(t)
	edges := r.SubsumptionGraph()
	type edge struct{ from, to string }
	got := map[edge]bool{}
	for _, e := range edges {
		from := "⊤̄" // universal negated tuple
		if e.From != nil {
			from = e.From.Item.String()
		}
		got[edge{from, e.To.Item.String()}] = true
	}
	want := []edge{
		{"⊤̄", "(ObsequiousStudent, Teacher)"},
		{"⊤̄", "(Student, IncoherentTeacher)"},
		{"(ObsequiousStudent, Teacher)", "(ObsequiousStudent, IncoherentTeacher)"},
		{"(Student, IncoherentTeacher)", "(ObsequiousStudent, IncoherentTeacher)"},
	}
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing edge %v", w)
		}
	}
}
