package core

import (
	"errors"
	"reflect"
	"testing"

	"hrdb/internal/hierarchy"
)

// TestExplicateFullFlies: full explication of the Flies relation yields
// exactly one atomic tuple per leaf under the asserted classes, with the
// signs the tuple-binding rules dictate.
func TestExplicateFullFlies(t *testing.T) {
	r := fliesRelation(t)
	flat, err := r.Explicate()
	must(t, err)
	want := map[string]bool{
		"Tweety":   true,
		"Paul":     false,
		"Patricia": true,
		"Pamela":   true,
		"Peter":    true,
	}
	if flat.Len() != len(want) {
		t.Fatalf("explicated = %v", flat.Tuples())
	}
	for who, sign := range want {
		tu, ok := flat.Lookup(Item{who})
		if !ok {
			t.Errorf("missing %s", who)
			continue
		}
		if tu.Sign != sign {
			t.Errorf("%s sign = %v, want %v", who, tu.Sign, sign)
		}
	}
	// All tuples are atomic.
	for _, tu := range flat.Tuples() {
		if !flat.IsAtomic(tu.Item) {
			t.Errorf("non-atomic tuple %v after full explication", tu)
		}
	}
}

// TestExplicateThenConsolidateDropsNegatives (§3.3.2): after full
// explication the negated tuples are redundant and a following consolidate
// removes exactly them.
func TestExplicateThenConsolidateDropsNegatives(t *testing.T) {
	r := fliesRelation(t)
	flat, err := r.Explicate()
	must(t, err)
	c := flat.Consolidate()
	for _, tu := range c.Tuples() {
		if !tu.Sign {
			t.Errorf("negated tuple %v survived consolidation", tu)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("tuples = %v, want the four flyers", c.Tuples())
	}
}

// TestExtensionFlies: the extension is the positive atomic items.
func TestExtensionFlies(t *testing.T) {
	r := fliesRelation(t)
	ext, err := r.Extension()
	must(t, err)
	want := []Item{{"Pamela"}, {"Patricia"}, {"Peter"}, {"Tweety"}}
	if !reflect.DeepEqual(ext, want) {
		t.Fatalf("Extension = %v, want %v", ext, want)
	}
	n, err := r.ExtensionSize()
	must(t, err)
	if n != 4 {
		t.Fatalf("ExtensionSize = %d", n)
	}
}

// TestExtensionMatchesOracle: Extension (via the paper's explication
// algorithm) agrees with direct per-atom evaluation on all fixtures.
func TestExtensionMatchesOracle(t *testing.T) {
	for _, r := range []*Relation{fliesRelation(t), respectsRelation(t), colorRelation(t)} {
		ext, err := r.Extension()
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		got := map[string]bool{}
		for _, it := range ext {
			got[it.Key()] = true
		}
		want := extensionByEnumeration(t, r)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: extension mismatch\n got %v\nwant %v", r.Name(), got, want)
		}
	}
}

// TestExplicatePartial: explicating only the Animal attribute of the
// Animal–Color relation leaves Color values intact and preserves the
// extension.
func TestExplicatePartial(t *testing.T) {
	r := colorRelation(t)
	part, err := r.Explicate("Animal")
	must(t, err)
	for _, tu := range part.Tuples() {
		h := part.Schema().Attr(0).Domain
		if !h.IsLeaf(tu.Item[0]) {
			t.Errorf("Animal coordinate %q not atomic", tu.Item[0])
		}
	}
	if !reflect.DeepEqual(extensionByEnumeration(t, part), extensionByEnumeration(t, r)) {
		t.Fatal("partial explication changed the extension")
	}
	// Consolidation after partial explication preserves the extension too
	// (in this fixture the colors are all atomic, so the negations are in
	// fact redundant and may be dropped).
	c := part.Consolidate()
	if !reflect.DeepEqual(extensionByEnumeration(t, c), extensionByEnumeration(t, r)) {
		t.Fatal("consolidate after partial explication changed the extension")
	}
}

// TestExplicatePartialKeepsNeededNegation (§3.3.2): "Negated tuples
// obtained are not redundant, and no consolidation need follow" — when the
// non-explicated attribute retains a class value, a negation produced by
// partial explication sits below a positive class tuple and must survive
// consolidation.
func TestExplicatePartialKeepsNeededNegation(t *testing.T) {
	animals := animalHierarchy(t)
	colors := hierarchy.New("Color")
	must(t, colors.AddClass("Bright"))
	must(t, colors.AddInstance("Red", "Bright"))
	must(t, colors.AddInstance("Yellow", "Bright"))
	s := MustSchema(
		Attribute{Name: "Animal", Domain: animals},
		Attribute{Name: "Color", Domain: colors},
	)
	r := NewRelation("Likes", s)
	must(t, r.Assert("Bird", "Bright")) // birds like bright colors
	must(t, r.Deny("Penguin", "Red"))   // penguins dislike red
	part, err := r.Explicate("Animal")
	must(t, err)
	if !reflect.DeepEqual(extensionByEnumeration(t, part), extensionByEnumeration(t, r)) {
		t.Fatal("partial explication changed the extension")
	}
	// Paul's red negation is dominated by Paul's (kept, class-valued)
	// bright positive: not redundant.
	c := part.Consolidate()
	if _, ok := c.Lookup(Item{"Paul", "Red"}); !ok {
		t.Fatalf("needed negation (Paul, Red)− was consolidated away: %v", c.Tuples())
	}
	got, err := c.Holds("Paul", "Yellow")
	must(t, err)
	if !got {
		t.Error("Paul should like yellow")
	}
	got, err = c.Holds("Paul", "Red")
	must(t, err)
	if got {
		t.Error("Paul should not like red")
	}
}

// TestExplicateUnknownAttr: bad attribute names are rejected.
func TestExplicateUnknownAttr(t *testing.T) {
	r := colorRelation(t)
	if _, err := r.Explicate("nope"); !errors.Is(err, ErrSchema) {
		t.Fatalf("got %v, want ErrSchema", err)
	}
}

// TestExplicateEmptyRelation: explication of an empty relation is empty.
func TestExplicateEmptyRelation(t *testing.T) {
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Empty", s)
	flat, err := r.Explicate()
	must(t, err)
	if flat.Len() != 0 {
		t.Fatalf("got %v", flat.Tuples())
	}
	ext, err := r.Extension()
	must(t, err)
	if len(ext) != 0 {
		t.Fatalf("extension = %v", ext)
	}
}

// TestExplicateTooLarge: the cap is enforced.
func TestExplicateTooLarge(t *testing.T) {
	h := hierarchy.New("D")
	must(t, h.AddClass("C"))
	// 600 leaves under C; three attributes of the same domain gives
	// 600^3 > maxProductNodes candidate tuples.
	for i := 0; i < 600; i++ {
		must(t, h.AddInstance(leafName(i), "C"))
	}
	s := MustSchema(
		Attribute{Name: "A", Domain: h},
		Attribute{Name: "B", Domain: h},
		Attribute{Name: "C3", Domain: h},
	)
	r := NewRelation("Big", s)
	must(t, r.Assert("C", "C", "C"))
	if _, err := r.Explicate(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func leafName(i int) string {
	const digits = "abcdefghij"
	if i == 0 {
		return "leaf_a"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return "leaf_" + s
}

// TestExplicateInfinitePotential (§1): a class tuple represents its whole
// membership — growing the class later grows the extension with no change
// to the relation's stored tuples.
func TestExplicateInfinitePotential(t *testing.T) {
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Flies", s)
	must(t, r.Assert("Canary"))
	n1, err := r.ExtensionSize()
	must(t, err)
	if n1 != 1 {
		t.Fatalf("size = %d", n1)
	}
	for _, name := range []string{"Bibi", "Coco"} {
		must(t, h.AddInstance(name, "Canary"))
	}
	n2, err := r.ExtensionSize()
	must(t, err)
	if n2 != 3 {
		t.Fatalf("size after growth = %d, want 3 (stored tuples: %d)", n2, r.Len())
	}
	if r.Len() != 1 {
		t.Fatalf("stored tuples = %d, want 1", r.Len())
	}
}
