package core

import (
	"fmt"
	"strings"
)

// DisplayValue renders one item coordinate the way the paper prints it:
// classes get a "∀" prefix (universal quantification over the class),
// instances and other leaves are printed bare.
func (r *Relation) DisplayValue(attr int, v string) string {
	h := r.schema.attrs[attr].Domain
	if h.IsLeaf(v) {
		return v
	}
	return "∀" + v
}

// Table renders the relation as an aligned text table in the style of the
// paper's figures: a sign column followed by one column per attribute,
// general tuples first. The output is deterministic.
func (r *Relation) Table() string {
	tuples := r.sortGeneralFirst(r.Tuples())
	headers := append([]string{""}, r.schema.Names()...)
	rows := make([][]string, 0, len(tuples))
	for _, t := range tuples {
		row := make([]string, 0, 1+len(t.Item))
		if t.Sign {
			row = append(row, "+")
		} else {
			row = append(row, "-")
		}
		for i, v := range t.Item {
			row = append(row, r.DisplayValue(i, v))
		}
		rows = append(rows, row)
	}
	return renderTable(r.name, headers, rows)
}

// renderTable lays out a titled, aligned text table.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, c := range row {
			if n := len([]rune(c)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	pad := func(s string, w int) string {
		return s + strings.Repeat(" ", w-len([]rune(s)))
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		b.WriteString(strings.TrimRight(strings.Join(parts, "  "), " "))
		b.WriteString("\n")
	}
	line(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return b.String()
}
