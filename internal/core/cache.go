package core

import "sync"

// This file implements the relation's verdict memo cache. Evaluation of an
// item against an unchanged relation is deterministic, so the result can be
// memoized; the cache is the read-path accelerator the inherited-value model
// needs (cf. Litwin's stored/inherited relations: inherited values are
// recomputed on every read unless cached).
//
// Correctness is enforced by stamping, not eviction: every entry records the
// relation's mutation epoch, the sum of the attribute hierarchies' mutation
// generations, and the preemption mode it was computed under. A lookup whose
// stamp differs is a miss, so a post-mutation Evaluate can never observe a
// stale verdict. Capacity is bounded with a two-generation (current /
// previous) rotation: inserts fill the current half; when it reaches half
// the capacity the generations rotate and the oldest half is discarded.

// defaultCacheCap bounds the number of memoized verdicts per relation.
const defaultCacheCap = 4096

// cacheStamp identifies the relation state a verdict was computed against.
type cacheStamp struct {
	epoch uint64     // relation mutation counter
	hgen  uint64     // sum of attribute-hierarchy generations
	mode  Preemption // preemption semantics in force
}

// cacheEntry is one memoized evaluation.
type cacheEntry struct {
	stamp cacheStamp
	v     Verdict
	err   error
}

// verdictCache is a bounded, synchronized memo table keyed by item key.
//
// flushedHits/flushedMisses track how much of hits/misses has already been
// pushed to the process-wide obs counters; get flushes the difference every
// cacheFlushBlock lookups so the hit path never touches a global atomic.
type verdictCache struct {
	mu           sync.Mutex
	cap          int
	cur, prev    map[string]cacheEntry
	hits, misses uint64

	flushedHits, flushedMisses uint64
}

// newVerdictCache creates a cache holding at most capacity entries.
func newVerdictCache(capacity int) *verdictCache {
	if capacity < 2 {
		capacity = 2
	}
	return &verdictCache{cap: capacity, cur: make(map[string]cacheEntry)}
}

// get returns the entry for key if present with a matching stamp.
func (c *verdictCache) get(key string, stamp cacheStamp) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.cur[key]; ok && e.stamp == stamp {
		c.hits++
		c.maybeFlushLocked()
		return e, true
	}
	if e, ok := c.prev[key]; ok && e.stamp == stamp {
		c.storeLocked(key, e) // promote so a rotation does not drop it
		c.hits++
		c.maybeFlushLocked()
		return e, true
	}
	c.misses++
	c.maybeFlushLocked()
	return cacheEntry{}, false
}

// maybeFlushLocked pushes the per-cache hit/miss counters to the global obs
// counters once per cacheFlushBlock lookups. Called with c.mu held; the
// block check is two adds and a mask, so the amortized cost per lookup is a
// fraction of a nanosecond.
func (c *verdictCache) maybeFlushLocked() {
	if (c.hits+c.misses)&(cacheFlushBlock-1) != 0 {
		return
	}
	c.flushLocked()
}

func (c *verdictCache) flushLocked() {
	if d := c.hits - c.flushedHits; d > 0 {
		metricCacheHits.Add(d)
		c.flushedHits = c.hits
	}
	if d := c.misses - c.flushedMisses; d > 0 {
		metricCacheMisses.Add(d)
		c.flushedMisses = c.misses
	}
}

// put memoizes an entry, rotating generations when the current one is full.
func (c *verdictCache) put(key string, e cacheEntry) {
	c.mu.Lock()
	c.storeLocked(key, e)
	c.mu.Unlock()
}

func (c *verdictCache) storeLocked(key string, e cacheEntry) {
	if len(c.cur) >= c.cap/2 {
		if _, ok := c.cur[key]; !ok {
			// Rotation discards the previous generation wholesale; those
			// entries are the cache's only form of eviction.
			if n := len(c.prev); n > 0 {
				metricCacheEvictions.Add(uint64(n))
			}
			c.prev = c.cur
			c.cur = make(map[string]cacheEntry, c.cap/2)
		}
	}
	c.cur[key] = e
}

// reset discards every entry (the counters are kept).
func (c *verdictCache) reset() {
	c.mu.Lock()
	c.cur = make(map[string]cacheEntry)
	c.prev = nil
	c.mu.Unlock()
}

// stats returns the hit/miss counters. Reading stats also flushes any
// pending block to the global obs counters, so a snapshot taken right after
// is exact.
func (c *verdictCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
	return c.hits, c.misses
}

// size returns the number of distinct resident keys (for tests of
// boundedness). A key promoted out of the previous generation is resident
// in both maps but must count once.
func (c *verdictCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.cur)
	for k := range c.prev {
		if _, ok := c.cur[k]; !ok {
			n++
		}
	}
	return n
}
