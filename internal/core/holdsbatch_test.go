package core

import (
	"context"
	"testing"
)

// TestHoldsBatchReducesVerdicts: HoldsBatch is EvaluateBatch collapsed to
// closed-world booleans, item for item.
func TestHoldsBatchReducesVerdicts(t *testing.T) {
	r := fliesRelation(t)
	atoms := allAtoms(t, r)
	vs, err := r.EvaluateBatch(context.Background(), atoms)
	must(t, err)
	got, err := r.HoldsBatch(context.Background(), atoms)
	must(t, err)
	if len(got) != len(vs) {
		t.Fatalf("len %d vs %d", len(got), len(vs))
	}
	for i := range vs {
		if got[i] != vs[i].Value {
			t.Errorf("item %v: HoldsBatch %v, verdict %v", atoms[i], got[i], vs[i].Value)
		}
	}
	// The error path reduces too.
	if _, err := r.HoldsBatch(context.Background(), []Item{{"no-such-node"}}); err == nil {
		t.Fatal("unknown item must fail")
	}
}

// TestEpochAndCacheToggles pins the cache-coherence observables: the epoch
// counter moves on every mutation, and SetCache flips CacheEnabled.
func TestEpochAndCacheToggles(t *testing.T) {
	r := fliesRelation(t)
	if !r.CacheEnabled() {
		t.Fatal("cache must default on")
	}
	e0 := r.Epoch()
	r.SetMode(OnPath)
	if r.Epoch() == e0 {
		t.Fatal("SetMode must advance the epoch")
	}
	r.SetCache(false)
	if r.CacheEnabled() {
		t.Fatal("SetCache(false) must report disabled")
	}
	r.SetCache(true)
	if !r.CacheEnabled() {
		t.Fatal("SetCache(true) must report enabled")
	}
}
