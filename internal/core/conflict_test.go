package core

import (
	"errors"
	"reflect"
	"testing"
)

// TestFigure3Conflict reproduces the paper's Figure 3 discussion: with only
// the two tuples above the dashed line ("obsequious students respect all
// teachers", "no student respects any incoherent teacher") the database is
// inconsistent — obsequious students vs incoherent teachers is undetermined.
func TestFigure3Conflict(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "Student", Domain: studentHierarchy(t)},
		Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := NewRelation("Respects", s)
	must(t, r.Assert("ObsequiousStudent", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))

	err := r.CheckConsistency()
	var ie *InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InconsistencyError", err)
	}
	// The conflict sits at the minimal resolution item
	// (ObsequiousStudent, IncoherentTeacher).
	found := false
	for _, c := range ie.Conflicts {
		if c.Item.Equal(Item{"ObsequiousStudent", "IncoherentTeacher"}) {
			found = true
			if len(c.Resolution) != 1 || !c.Resolution[0].Equal(Item{"ObsequiousStudent", "IncoherentTeacher"}) {
				t.Errorf("resolution = %v", c.Resolution)
			}
		}
	}
	if !found {
		t.Fatalf("conflicts = %v, missing (ObsequiousStudent, IncoherentTeacher)", ie.Conflicts)
	}

	// The explicit resolving tuple restores consistency (Fig. 3's tuple
	// below the dashed line).
	must(t, r.Assert("ObsequiousStudent", "IncoherentTeacher"))
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("resolved relation still inconsistent: %v", err)
	}

	// And John (an obsequious student) now respects Fagin (an incoherent
	// teacher).
	got, err2 := r.Holds("John", "Fagin")
	must(t, err2)
	if !got {
		t.Error("John should respect Fagin after resolution")
	}
}

// TestFigure3EvaluateConflict: evaluating the conflicted item directly also
// reports the conflict with both binders.
func TestFigure3EvaluateConflict(t *testing.T) {
	s := MustSchema(
		Attribute{Name: "Student", Domain: studentHierarchy(t)},
		Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := NewRelation("Respects", s)
	must(t, r.Assert("ObsequiousStudent", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))

	_, err := r.Evaluate(Item{"John", "Fagin"})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want ConflictError", err)
	}
	if len(ce.Binders) != 2 {
		t.Errorf("binders = %v, want 2", ce.Binders)
	}
}

// TestPatriciaGalapagosConflict reproduces §2.1's multiple-inheritance
// discussion: adding "Galapagos penguins cannot fly" conflicts at Patricia,
// who is both a Galapagos and an amazing flying penguin.
func TestPatriciaGalapagosConflict(t *testing.T) {
	r := fliesRelation(t)
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("Figure 1 relation should be consistent: %v", err)
	}
	must(t, r.Deny("GalapagosPenguin"))
	err := r.CheckConsistency()
	var ie *InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InconsistencyError", err)
	}
	if len(ie.Conflicts) != 1 || !ie.Conflicts[0].Item.Equal(Item{"Patricia"}) {
		t.Fatalf("conflicts = %v, want one at Patricia", ie.Conflicts)
	}
	// Resolve with an exact tuple on Patricia.
	must(t, r.Assert("Patricia"))
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("still inconsistent: %v", err)
	}
}

// TestMinimalResolutionSet: per-attribute meets multiply out.
func TestMinimalResolutionSet(t *testing.T) {
	r := respectsRelation(t)
	got := r.MinimalResolutionSet(
		Item{"ObsequiousStudent", "Teacher"},
		Item{"Student", "IncoherentTeacher"},
	)
	want := []Item{{"ObsequiousStudent", "IncoherentTeacher"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Disjoint items have an empty resolution set.
	r2 := fliesRelation(t)
	if got := r2.MinimalResolutionSet(Item{"Canary"}, Item{"Penguin"}); got != nil {
		t.Fatalf("disjoint: got %v, want nil", got)
	}
}

// TestCompleteResolutionSet: all common subsumees, most general to leaves.
func TestCompleteResolutionSet(t *testing.T) {
	r := fliesRelation(t)
	got, err := r.CompleteResolutionSet(Item{"GalapagosPenguin"}, Item{"AmazingFlyingPenguin"}, 0)
	must(t, err)
	want := []Item{{"Patricia"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}

	// With a shared class, the complete set includes the class and its
	// descendants while the minimal set is just the class.
	h := r.Schema().Attr(0).Domain
	_ = h
	got, err = r.CompleteResolutionSet(Item{"Bird"}, Item{"Penguin"}, 0)
	must(t, err)
	// Bird subsumes Penguin: meets = {Penguin}; complete = Penguin + all
	// its descendants.
	if len(got) != 7 {
		t.Fatalf("complete set size = %d (%v), want 7", len(got), got)
	}
	// Cap enforcement.
	if _, err := r.CompleteResolutionSet(Item{"Bird"}, Item{"Penguin"}, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("cap: got %v, want ErrTooLarge", err)
	}
}

// TestOptimisticDisjointness (§3.1): opposite-sign assertions on classes
// with no common descendant are not a conflict.
func TestOptimisticDisjointness(t *testing.T) {
	r := fliesRelation(t)
	// Canary+ already implied; deny GalapagosPenguin: Canary and GP share
	// no members, so Bird+ vs GP- is an exception, and Canary vs GP never
	// overlaps.
	must(t, r.Deny("GalapagosPenguin"))
	// Patricia conflict exists (GP vs AFP); resolve it, then check that no
	// Canary/GP conflict is reported.
	must(t, r.Assert("Patricia"))
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("unexpected conflicts: %v", err)
	}
}

// TestEmptyIntersectionClassForcesPessimism (§3.1): a front end can force
// pessimistic integrity maintenance by defining an empty intersection
// class; a conflict is then detected even with no instances.
func TestEmptyIntersectionClassForcesPessimism(t *testing.T) {
	h := animalHierarchy(t)
	// An empty class of canaries raised among penguins.
	must(t, h.AddClass("PenguinRaisedCanary", "Canary", "Penguin"))
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Flies", s)
	must(t, r.Assert("Canary"))
	must(t, r.Deny("Penguin"))
	err := r.CheckConsistency()
	var ie *InconsistencyError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want InconsistencyError at the empty intersection class", err)
	}
	if !ie.Conflicts[0].Item.Equal(Item{"PenguinRaisedCanary"}) {
		t.Fatalf("conflict at %v, want PenguinRaisedCanary", ie.Conflicts[0].Item)
	}
}

// TestConflictErrorRendering exercises the error strings.
func TestConflictErrorRendering(t *testing.T) {
	ce := &ConflictError{
		Relation:   "R",
		Item:       Item{"x"},
		Binders:    []Tuple{{Item: Item{"A"}, Sign: true}, {Item: Item{"B"}, Sign: false}},
		Resolution: []Item{{"x"}},
	}
	msg := ce.Error()
	for _, want := range []string{"R", "(x)", "+ (A)", "- (B)", "resolve"} {
		if !contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	ie := &InconsistencyError{Relation: "R", Conflicts: []*ConflictError{ce, ce}}
	if !contains(ie.Error(), "2 ambiguity conflicts") {
		t.Errorf("InconsistencyError = %q", ie.Error())
	}
	if ie.Unwrap() != ce {
		t.Error("Unwrap should expose the first conflict")
	}
	single := &InconsistencyError{Relation: "R", Conflicts: []*ConflictError{ce}}
	if single.Error() != ce.Error() {
		t.Error("single-conflict InconsistencyError should render the conflict")
	}
	empty := &InconsistencyError{Relation: "R"}
	if empty.Unwrap() != nil {
		t.Error("empty Unwrap should be nil")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestNoPreemptionConsistency: under no-preemption the exhaustive checker
// finds the conflict at Paul that the pairwise check alone would miss
// (Bird+ subsumes Penguin−, so the pair is skipped as an exception, yet
// both apply to Paul with no preemption).
func TestNoPreemptionConsistency(t *testing.T) {
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Flies", s)
	must(t, r.Assert("Bird"))
	must(t, r.Deny("Penguin"))
	r.SetMode(NoPreemption)
	// Direct evaluation conflicts at Paul.
	var ce *ConflictError
	if _, err := r.Evaluate(Item{"Paul"}); !errors.As(err, &ce) {
		t.Fatalf("got %v, want ConflictError at Paul", err)
	}
	// The consistency checker must find it too, even though Bird+ and
	// Penguin− are comparable (a mere exception under off-path).
	var ie *InconsistencyError
	if err := r.CheckConsistency(); !errors.As(err, &ie) {
		t.Fatalf("CheckConsistency: got %v, want InconsistencyError", err)
	}
	// Under the default off-path mode the same relation is consistent.
	r.SetMode(OffPath)
	if err := r.CheckConsistency(); err != nil {
		t.Fatalf("off-path should be consistent: %v", err)
	}
}
