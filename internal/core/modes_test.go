package core

import (
	"math/rand"
	"testing"

	"hrdb/internal/hierarchy"
)

// randomTree builds a random single-inheritance hierarchy (every node has
// exactly one parent).
func randomTree(rng *rand.Rand, domain string, n int) *hierarchy.Hierarchy {
	h := hierarchy.New(domain)
	names := []string{domain}
	for i := 0; i < n; i++ {
		name := domain + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		parent := names[rng.Intn(len(names))]
		if err := h.AddClass(name, parent); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	return h
}

// TestPropertyTreeOnPathEqualsOffPath: with single inheritance every path
// between two comparable nodes is unique, so on-path and off-path
// preemption coincide — including which items conflict (none can, in a
// tree, absent exact contradictions).
func TestPropertyTreeOnPathEqualsOffPath(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 30; trial++ {
		h := randomTree(rng, "D", 8+rng.Intn(6))
		s := MustSchema(Attribute{Name: "X", Domain: h})
		r := NewRelation("R", s)
		nodes := h.Nodes()
		for n := 0; n < 4+rng.Intn(5); n++ {
			_ = r.Insert(Item{nodes[rng.Intn(len(nodes))]}, rng.Intn(2) == 0)
		}
		for _, node := range nodes {
			item := Item{node}
			r.SetMode(OffPath)
			vOff, errOff := r.Evaluate(item)
			r.SetMode(OnPath)
			vOn, errOn := r.Evaluate(item)
			if (errOff == nil) != (errOn == nil) {
				t.Fatalf("trial %d node %s: off err=%v on err=%v\ntuples %v",
					trial, node, errOff, errOn, r.Tuples())
			}
			if errOff == nil && vOff.Value != vOn.Value {
				t.Fatalf("trial %d node %s: off=%v on=%v\ntuples %v",
					trial, node, vOff.Value, vOn.Value, r.Tuples())
			}
		}
	}
}

// TestPropertyPositiveOnlyAllModesAgree: without negated tuples there are
// no exceptions, so all three preemption semantics give the same answers
// and never conflict.
func TestPropertyPositiveOnlyAllModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		h := randomHierarchy(rng, "D", 8+rng.Intn(6))
		s := MustSchema(Attribute{Name: "X", Domain: h})
		r := NewRelation("R", s)
		nodes := h.Nodes()
		for n := 0; n < 4+rng.Intn(5); n++ {
			_ = r.Insert(Item{nodes[rng.Intn(len(nodes))]}, true)
		}
		for _, node := range nodes {
			item := Item{node}
			var vals [3]bool
			for i, mode := range []Preemption{OffPath, OnPath, NoPreemption} {
				r.SetMode(mode)
				v, err := r.Evaluate(item)
				if err != nil {
					t.Fatalf("trial %d mode %v node %s: %v", trial, mode, node, err)
				}
				vals[i] = v.Value
			}
			if vals[0] != vals[1] || vals[1] != vals[2] {
				t.Fatalf("trial %d node %s: modes disagree %v\ntuples %v",
					trial, node, vals, r.Tuples())
			}
		}
	}
}

// TestFigure2ProductShape verifies the product item hierarchy of Figure 2
// through the explicit binding-graph construction: for (John, Fagin) in the
// resolved Respects relation, the binding graph must contain the three
// tuples with the resolving tuple as the unique binder, and the elimination
// path must agree with the fast path.
func TestFigure2ProductShape(t *testing.T) {
	r := respectsRelation(t)
	item := Item{"John", "Fagin"}
	bg, err := r.TupleBindingGraph(item)
	must(t, err)
	if len(bg.Nodes) != 3 {
		t.Fatalf("nodes = %v", bg.Nodes)
	}
	if len(bg.Binders) != 1 {
		t.Fatalf("binders = %v", bg.Binders)
	}
	if !bg.Nodes[bg.Binders[0]].Item.Equal(Item{"ObsequiousStudent", "IncoherentTeacher"}) {
		t.Fatalf("binder = %v", bg.Nodes[bg.Binders[0]])
	}
	// The explicit product-graph elimination agrees.
	applicable := r.Applicable(item)
	slow, err := r.bindersByElimination(item, applicable, false)
	must(t, err)
	if len(slow) != 1 || !slow[0].Item.Equal(Item{"ObsequiousStudent", "IncoherentTeacher"}) {
		t.Fatalf("elimination binder = %v", slow)
	}
	// The product slice enumerated for (John, Fagin) covers
	// ancestors(John) × ancestors(Fagin) = 3 × 3 = 9 vectors; the paper's
	// Fig. 2c product is exactly this grid.
	sh := r.Schema().Attr(0).Domain
	th := r.Schema().Attr(1).Domain
	sAnc := len(sh.Ancestors("John")) + 1
	tAnc := len(th.Ancestors("Fagin")) + 1
	if sAnc*tAnc != 9 {
		t.Fatalf("product slice = %d × %d", sAnc, tAnc)
	}
}

// TestEvaluateProductTooLarge: the explicit-elimination cap is enforced.
func TestEvaluateProductTooLarge(t *testing.T) {
	h := hierarchy.New("D")
	// A wide two-level hierarchy: node x has ~700 ancestors through a
	// redundancy-inducing construction is hard; instead use many attributes
	// of a deep chain so the ancestor product explodes.
	parent := "D"
	for i := 0; i < 64; i++ {
		name := leafName(i) + "_lvl"
		must(t, h.AddClass(name, parent))
		parent = name
	}
	must(t, h.AddInstance("leaf", parent))
	s := MustSchema(
		Attribute{Name: "A", Domain: h},
		Attribute{Name: "B", Domain: h},
		Attribute{Name: "C", Domain: h},
	)
	r := NewRelation("R", s)
	must(t, r.Assert("D", "D", "D"))
	r.SetMode(OnPath) // forces the explicit construction
	_, err := r.Evaluate(Item{"leaf", "leaf", "leaf"})
	if err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}
