package core

import "sort"

// This file is the planner-facing surface of the secondary tuple indexes:
// per-attribute posting lists (class → tuple keys) maintained by
// Insert/Retract under the relation epoch. The algebra package's cost model
// reads the statistics here to choose between a full scan and an index
// probe, and OverlapCandidates is the probe itself.

// DistinctValues returns the number of distinct values stored in column
// attr across the relation's tuples — the number of posting lists an index
// probe on that column has to consider.
func (r *Relation) DistinctValues(attr int) int {
	if attr < 0 || attr >= len(r.idx) {
		return 0
	}
	return len(r.idx[attr])
}

// PostingCount returns how many stored tuples carry exactly value in column
// attr.
func (r *Relation) PostingCount(attr int, value string) int {
	if attr < 0 || attr >= len(r.idx) {
		return 0
	}
	return len(r.idx[attr][value])
}

// OverlapCandidates returns the tuples whose attr-th coordinate overlaps
// class (one subsumes the other, or they share a descendant), sorted by
// item key. It probes the secondary index — one Overlaps test per distinct
// stored value instead of one per tuple — and returns exactly the tuples a
// full scan filtered by Overlaps(t.Item[attr], class) would.
func (r *Relation) OverlapCandidates(attr int, class string) []Tuple {
	if attr < 0 || attr >= len(r.idx) {
		return nil
	}
	h := r.schema.attrs[attr].Domain
	if !h.Has(class) {
		return nil
	}
	var out []Tuple
	for v, keys := range r.idx[attr] {
		if !h.Overlaps(v, class) {
			continue
		}
		for _, k := range keys {
			out = append(out, r.tuples[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item.Key() < out[j].Item.Key() })
	return out
}

// IndexStats summarizes one relation column for the cost model.
type IndexStats struct {
	Attr     string // attribute name
	Distinct int    // distinct stored values (posting lists)
	Tuples   int    // stored tuples (cardinality)
	Warm     bool   // the domain's O(1) subsumption label index is built
}

// Stats returns per-column index statistics in schema order.
func (r *Relation) Stats() []IndexStats {
	out := make([]IndexStats, r.schema.Arity())
	for i, a := range r.schema.attrs {
		out[i] = IndexStats{
			Attr:     a.Name,
			Distinct: len(r.idx[i]),
			Tuples:   len(r.tuples),
			Warm:     a.Domain.IndexWarm(),
		}
	}
	return out
}
