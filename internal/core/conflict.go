package core

import (
	"fmt"
	"sort"
)

// Overlapping reports whether two items can share atomic items: every
// coordinate pair overlaps in its hierarchy (one subsumes the other or they
// have a common descendant). This is the paper's "optimistic" evidence rule
// (§3.1): items are assumed disjoint unless the hierarchy proves otherwise.
func (r *Relation) Overlapping(a, b Item) bool {
	for i := range a {
		if !r.schema.attrs[i].Domain.Overlaps(a[i], b[i]) {
			return false
		}
	}
	return true
}

// MinimalResolutionSet returns the paper's minimal conflict resolution set
// for two items: the maximal items subsumed by both (§3.1). It is the
// componentwise product of the per-attribute maximal common descendants and
// is empty iff the items do not overlap.
func (r *Relation) MinimalResolutionSet(a, b Item) []Item {
	k := r.schema.Arity()
	perAttr := make([][]string, k)
	for i := 0; i < k; i++ {
		m := r.schema.attrs[i].Domain.Meets(a[i], b[i])
		if len(m) == 0 {
			return nil
		}
		perAttr[i] = m
	}
	var out []Item
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == k {
			out = append(out, prefix.Clone())
			return
		}
		for _, n := range perAttr[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, k), 0)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// CompleteResolutionSet returns every item subsumed by both a and b — the
// paper's complete conflict resolution set. The result can be large; limit
// caps the number of items returned (0 means no cap), with ErrTooLarge when
// exceeded.
func (r *Relation) CompleteResolutionSet(a, b Item, limit int) ([]Item, error) {
	k := r.schema.Arity()
	perAttr := make([][]string, k)
	for i := 0; i < k; i++ {
		h := r.schema.attrs[i].Domain
		seen := map[string]bool{}
		var nodes []string
		for _, m := range h.Meets(a[i], b[i]) {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
			for _, d := range h.Descendants(m) {
				if !seen[d] {
					seen[d] = true
					nodes = append(nodes, d)
				}
			}
		}
		if len(nodes) == 0 {
			return nil, nil
		}
		sort.Strings(nodes)
		perAttr[i] = nodes
	}
	var out []Item
	var rec func(prefix Item, i int) error
	rec = func(prefix Item, i int) error {
		if i == k {
			if limit > 0 && len(out) >= limit {
				return fmt.Errorf("%w: complete resolution set exceeds %d items", ErrTooLarge, limit)
			}
			out = append(out, prefix.Clone())
			return nil
		}
		for _, n := range perAttr[i] {
			if err := rec(append(prefix, n), i+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(make(Item, 0, k), 0); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// Conflicts returns every ambiguity-constraint violation in the relation.
//
// Under off-path preemption with irredundant hierarchies the check is
// pairwise-complete: an item-level conflict exists iff, for some pair of
// opposite-sign, mutually incomparable, overlapping tuples, an item of
// their minimal resolution set evaluates to a conflict. (If a conflict
// existed at any item y, its mixed-sign minimal applicable tuples t1, t2
// are incomparable and overlap at y; y lies under some X in M(t1,t2); every
// tuple applicable to X is applicable to y, so had any tuple cut strictly
// below t1 or t2 at X it would contradict their minimality at y — hence t1
// and t2 are still minimal at X and X itself conflicts.)
//
// Under the other preemption modes, or with redundant hierarchy edges,
// minimality arguments do not apply; the checker then additionally
// evaluates every atomic item of each overlap region, bounded by
// maxProductNodes per pair.
func (r *Relation) Conflicts() []*ConflictError {
	tuples := r.Tuples()
	exhaustive := r.mode != OffPath || !r.fastPathOK()

	var out []*ConflictError
	seen := map[string]bool{}
	record := func(item Item) {
		if seen[item.Key()] {
			return
		}
		if _, err := r.Evaluate(item); err != nil {
			if ce, ok := err.(*ConflictError); ok {
				seen[item.Key()] = true
				ce.Resolution = r.resolutionFor(ce)
				out = append(out, ce)
			}
		}
	}

	for i := 0; i < len(tuples); i++ {
		for j := i + 1; j < len(tuples); j++ {
			t1, t2 := tuples[i], tuples[j]
			if t1.Sign == t2.Sign {
				continue
			}
			comparable := r.Subsumes(t1.Item, t2.Item) || r.Subsumes(t2.Item, t1.Item)
			if comparable && !exhaustive {
				continue // an exception, not a conflict, under off-path
			}
			if !r.Overlapping(t1.Item, t2.Item) {
				continue
			}
			if !comparable {
				for _, m := range r.MinimalResolutionSet(t1.Item, t2.Item) {
					record(m)
				}
			}
			if exhaustive {
				// Without full off-path preemption, conflicts can appear at
				// any item of the shared region — including composite items
				// and items under a comparable pair — so every common node
				// combination is checked.
				for _, it := range r.overlapItems(t1.Item, t2.Item) {
					record(it)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Item.Key() < out[j].Item.Key() })
	return out
}

// resolutionFor computes the minimal resolution set for the first
// opposite-sign pair among a conflict's binders.
func (r *Relation) resolutionFor(ce *ConflictError) []Item {
	for i := 0; i < len(ce.Binders); i++ {
		for j := i + 1; j < len(ce.Binders); j++ {
			if ce.Binders[i].Sign != ce.Binders[j].Sign {
				return r.MinimalResolutionSet(ce.Binders[i].Item, ce.Binders[j].Item)
			}
		}
	}
	return nil
}

// overlapItems enumerates every item (composite or atomic) in the
// intersection of two items: the componentwise combinations of all nodes
// subsumed by both coordinates. Capped at maxProductNodes combinations.
func (r *Relation) overlapItems(a, b Item) []Item {
	k := r.schema.Arity()
	perAttr := make([][]string, k)
	size := 1
	for i := 0; i < k; i++ {
		h := r.schema.attrs[i].Domain
		seen := map[string]bool{}
		var nodes []string
		for _, m := range h.Meets(a[i], b[i]) {
			if !seen[m] {
				seen[m] = true
				nodes = append(nodes, m)
			}
			for _, d := range h.Descendants(m) {
				if !seen[d] {
					seen[d] = true
					nodes = append(nodes, d)
				}
			}
		}
		if len(nodes) == 0 {
			return nil
		}
		sort.Strings(nodes)
		perAttr[i] = nodes
		size *= len(nodes)
		if size > maxProductNodes {
			return nil // give up on exhaustive enumeration for this pair
		}
	}
	var out []Item
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == k {
			out = append(out, prefix.Clone())
			return
		}
		for _, n := range perAttr[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, k), 0)
	return out
}

// CheckConsistency returns nil when the relation satisfies the ambiguity
// constraint, or an *InconsistencyError naming every conflict.
func (r *Relation) CheckConsistency() error {
	conflicts := r.Conflicts()
	if len(conflicts) == 0 {
		return nil
	}
	return &InconsistencyError{Relation: r.name, Conflicts: conflicts}
}
