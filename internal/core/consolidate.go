package core

import (
	"fmt"
	"strings"
)

// This file implements the paper's first new relational operator,
// Consolidate (§3.3.1): eliminate redundant tuples.
//
// A tuple is redundant iff it has the same truth value as all of its
// immediate predecessors in the subsumption graph of the relation — where
// tuples with no predecessor are given the universal negated tuple as their
// predecessor (so a top-level negated tuple is redundant and a top-level
// positive tuple is not). Because deleting a tuple changes the subsumption
// graph, the result depends on deletion order; the paper proves that
// processing nodes in topologically sorted order (general → specific)
// yields the unique minimum relation, which is what Consolidate does.

// RedundantTuples returns the tuples that are redundant in the current
// subsumption graph (without removing anything). Note that redundancy is
// evaluated against the graph as it stands: removing one redundant tuple
// can make another, previously irredundant tuple redundant — Consolidate
// handles the cascade.
func (r *Relation) RedundantTuples() []Tuple {
	var out []Tuple
	for _, t := range r.Tuples() {
		if r.isRedundant(t, r.Tuples()) {
			out = append(out, t)
		}
	}
	return out
}

// isRedundant reports whether t has the same sign as all its immediate
// predecessors among the given tuple set (the universal negated tuple if it
// has none).
func (r *Relation) isRedundant(t Tuple, tuples []Tuple) bool {
	var above []Tuple
	for _, u := range tuples {
		if !u.Item.Equal(t.Item) && r.BindSubsumes(u.Item, t.Item) {
			above = append(above, u)
		}
	}
	if len(above) == 0 {
		// Immediate predecessor is the universal negated tuple.
		return !t.Sign
	}
	// Immediate predecessors: minimal elements of the tuples strictly above.
	for _, u := range r.minimalTuples(above) {
		if u.Sign != t.Sign {
			return false
		}
	}
	return true
}

// Consolidate returns the unique minimum relation with the same extension:
// it walks the subsumption graph in topologically sorted order and deletes
// every tuple that is redundant with respect to the tuples remaining at
// that point (§3.3.1). The receiver is not modified.
func (r *Relation) Consolidate() *Relation {
	out := r.Clone()
	tuples := r.Tuples()
	n := len(tuples)

	// Precompute the strict-binding-subsumption matrix with interned node
	// ids so the O(n²) scans below avoid per-pair string-map lookups.
	sub := r.subsumptionMatrix(tuples)

	// Topologically order the tuples general-first (Kahn over the matrix;
	// Tuples() is already key-sorted, giving a deterministic tie-break).
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sub[i][j] {
				indeg[j]++
			}
		}
	}
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	orderedIdx := make([]int, 0, n)
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		orderedIdx = append(orderedIdx, i)
		for j := 0; j < n; j++ {
			if sub[i][j] {
				indeg[j]--
				if indeg[j] == 0 {
					frontier = append(frontier, j)
				}
			}
		}
		sortInts(frontier)
	}

	removed := make([]bool, n)
	for oi := 0; oi < n; oi++ {
		i := orderedIdx[oi]
		// Immediate predecessors of i among the survivors: the minimal
		// elements of {j live : sub[j][i]}.
		var above []int
		for j := 0; j < n; j++ {
			if !removed[j] && j != i && sub[j][i] {
				above = append(above, j)
			}
		}
		redundant := true
		if len(above) == 0 {
			// The universal negated tuple is the only predecessor.
			redundant = !tuples[i].Sign
		} else {
			for _, a := range above {
				minimal := true
				for _, b := range above {
					if b != a && sub[a][b] {
						minimal = false
						break
					}
				}
				if minimal && tuples[a].Sign != tuples[i].Sign {
					redundant = false
					break
				}
			}
		}
		if redundant {
			out.Retract(tuples[i].Item)
			removed[i] = true
		}
	}
	return out
}

// sortInts sorts a small int slice ascending (insertion sort; frontiers are
// tiny).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// subsumptionMatrix returns sub[i][j] = ordered[i].Item strictly
// bind-subsumes ordered[j].Item, computed via reachability bitsets.
func (r *Relation) subsumptionMatrix(ordered []Tuple) [][]bool {
	n := len(ordered)
	k := r.schema.Arity()
	// Intern every coordinate id once.
	ids := make([][]int, n)
	for i, t := range ordered {
		ids[i] = make([]int, k)
		for a := 0; a < k; a++ {
			ids[i][a] = r.schema.attrs[a].Domain.MustID(t.Item[a])
		}
	}
	sub := make([][]bool, n)
	for i := 0; i < n; i++ {
		sub[i] = make([]bool, n)
		// Reach sets for i's coordinates.
		reaches := make([]func(int) bool, k)
		for a := 0; a < k; a++ {
			set, ok := r.schema.attrs[a].Domain.BindReachSet(ordered[i].Item[a])
			if !ok {
				reaches[a] = func(int) bool { return false }
				continue
			}
			s := set
			reaches[a] = s.Get
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			all := true
			equal := true
			for a := 0; a < k; a++ {
				if !reaches[a](ids[j][a]) {
					all = false
					break
				}
				if ids[i][a] != ids[j][a] {
					equal = false
				}
			}
			sub[i][j] = all && !equal
		}
	}
	return sub
}

// SubsumptionEdge is an edge of the relation's subsumption graph. From is
// nil when the source is the universal negated tuple.
type SubsumptionEdge struct {
	From *Tuple
	To   Tuple
}

// SubsumptionDOT renders the relation's subsumption graph in Graphviz
// syntax (Fig. 1c, Fig. 6a); the universal negated tuple appears as utop.
func (r *Relation) SubsumptionDOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", r.name)
	b.WriteString("  utop [label=\"universal negated tuple\"];\n")
	ids := map[string]int{}
	for i, t := range r.Tuples() {
		ids[t.Item.Key()] = i
		fmt.Fprintf(&b, "  t%d [label=%q];\n", i, t.String())
	}
	for _, e := range r.SubsumptionGraph() {
		from := "utop"
		if e.From != nil {
			from = fmt.Sprintf("t%d", ids[e.From.Item.Key()])
		}
		fmt.Fprintf(&b, "  %s -> t%d;\n", from, ids[e.To.Item.Key()])
	}
	b.WriteString("}\n")
	return b.String()
}

// SubsumptionGraph returns the relation's subsumption graph (Fig. 1c,
// Fig. 6a): one node per tuple plus the implicit universal negated tuple,
// with edges from each tuple's immediate predecessors.
func (r *Relation) SubsumptionGraph() []SubsumptionEdge {
	tuples := r.Tuples()
	var out []SubsumptionEdge
	for _, t := range tuples {
		var above []Tuple
		for _, u := range tuples {
			if !u.Item.Equal(t.Item) && r.BindSubsumes(u.Item, t.Item) {
				above = append(above, u)
			}
		}
		if len(above) == 0 {
			out = append(out, SubsumptionEdge{From: nil, To: t})
			continue
		}
		for _, u := range r.minimalTuples(above) {
			u := u
			out = append(out, SubsumptionEdge{From: &u, To: t})
		}
	}
	return out
}
