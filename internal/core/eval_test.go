package core

import (
	"errors"
	"testing"
)

// TestFigure1Evaluation reproduces the truth values the paper derives from
// Figure 1: Tweety flies (inherits from Bird); Paul does not (Penguin
// exception); Pamela flies (exception to the exception); Peter flies (an
// exact tuple overrides everything); Patricia flies (her only immediate
// predecessor is the AmazingFlyingPenguin tuple).
func TestFigure1Evaluation(t *testing.T) {
	r := fliesRelation(t)
	cases := []struct {
		who  string
		want bool
	}{
		{"Tweety", true},
		{"Paul", false},
		{"Pamela", true},
		{"Peter", true},
		{"Patricia", true},
		{"Canary", true},            // the class itself
		{"GalapagosPenguin", false}, // class under Penguin
	}
	for _, c := range cases {
		got, err := r.Holds(c.who)
		if err != nil {
			t.Errorf("Holds(%s): %v", c.who, err)
			continue
		}
		if got != c.want {
			t.Errorf("Holds(%s) = %v, want %v", c.who, got, c.want)
		}
	}
}

// TestFigure1Verdict checks the structure of a verdict: Peter's exact tuple
// binds strongest; Patricia's binder is the AFP tuple; Paul's binder is the
// Penguin negation.
func TestFigure1Verdict(t *testing.T) {
	r := fliesRelation(t)

	v, err := r.Evaluate(Item{"Peter"})
	must(t, err)
	if !v.Exact || len(v.Binders) != 1 || v.Binders[0].Item[0] != "Peter" {
		t.Errorf("Peter verdict = %+v, want exact binder Peter", v)
	}
	if len(v.Applicable) != 4 {
		t.Errorf("Peter has %d applicable tuples, want 4", len(v.Applicable))
	}

	v, err = r.Evaluate(Item{"Patricia"})
	must(t, err)
	if len(v.Binders) != 1 || v.Binders[0].Item[0] != "AmazingFlyingPenguin" {
		t.Errorf("Patricia binders = %v, want [AmazingFlyingPenguin]", v.Binders)
	}
	if len(v.Applicable) != 3 {
		t.Errorf("Patricia has %d applicable tuples, want 3 (Bird, Penguin, AFP)", len(v.Applicable))
	}

	v, err = r.Evaluate(Item{"Paul"})
	must(t, err)
	if v.Value || len(v.Binders) != 1 || v.Binders[0].Item[0] != "Penguin" {
		t.Errorf("Paul verdict = %+v, want negative Penguin binder", v)
	}
}

// TestDefaultFalse: an item with no applicable tuples is false by default
// (the universal negated tuple).
func TestDefaultFalse(t *testing.T) {
	r := fliesRelation(t)
	// Remove everything but the Peter tuple; then Tweety has no applicable
	// tuples at all.
	must(t, func() error { r.Retract(Item{"Bird"}); return nil }())
	v, err := r.Evaluate(Item{"Tweety"})
	must(t, err)
	if v.Value || !v.Default {
		t.Errorf("verdict = %+v, want default false", v)
	}
}

// TestEvaluateValidation: bad arity and unknown values are rejected.
func TestEvaluateValidation(t *testing.T) {
	r := fliesRelation(t)
	if _, err := r.Evaluate(Item{"Tweety", "extra"}); !errors.Is(err, ErrArity) {
		t.Errorf("arity: got %v", err)
	}
	if _, err := r.Evaluate(Item{"Dodo"}); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("unknown: got %v", err)
	}
}

// TestInsertValidationAndContradiction covers tuple-level errors.
func TestInsertValidationAndContradiction(t *testing.T) {
	r := fliesRelation(t)
	if err := r.Assert("Dodo"); !errors.Is(err, ErrUnknownValue) {
		t.Errorf("unknown value: got %v", err)
	}
	if err := r.Assert("Bird"); err != nil {
		t.Errorf("idempotent re-assert: got %v", err)
	}
	if err := r.Deny("Bird"); !errors.Is(err, ErrContradiction) {
		t.Errorf("contradiction: got %v", err)
	}
	if !r.Retract(Item{"Bird"}) {
		t.Error("Retract(Bird) = false")
	}
	if r.Retract(Item{"Bird"}) {
		t.Error("second Retract(Bird) = true")
	}
	if err := r.Deny("Bird"); err != nil {
		t.Errorf("deny after retract: %v", err)
	}
}

// TestFigure4Appu reproduces the paper's Clyde-the-royal-elephant variation:
// royal elephant binds more strongly to Appu than elephant does, so Appu is
// white, not grey; Appu's Indian-elephant membership is irrelevant because
// nothing is asserted about Indian elephants' color.
func TestFigure4Appu(t *testing.T) {
	r := colorRelation(t)
	cases := []struct {
		item Item
		want bool
	}{
		{Item{"Appu", "Grey"}, false},
		{Item{"Appu", "White"}, true},
		{Item{"Clyde", "White"}, false},
		{Item{"Clyde", "Dappled"}, true},
		{Item{"Clyde", "Grey"}, false},
		{Item{"AfricanElephant", "Grey"}, true},
		{Item{"RoyalElephant", "White"}, true},
		{Item{"RoyalElephant", "Grey"}, false},
	}
	for _, c := range cases {
		v, err := r.Evaluate(c.item)
		if err != nil {
			t.Errorf("Evaluate(%v): %v", c.item, err)
			continue
		}
		if v.Value != c.want {
			t.Errorf("Evaluate(%v) = %v, want %v", c.item, v.Value, c.want)
		}
	}
	if err := r.CheckConsistency(); err != nil {
		t.Errorf("Figure 4 relation should be consistent: %v", err)
	}
}

// TestAppendixOffPathPatricia: under the default off-path semantics
// Patricia flies — AmazingFlyingPenguin preempts Penguin because Patricia's
// Galapagos path to Penguin does not carry a tuple.
func TestAppendixOffPathPatricia(t *testing.T) {
	r := fliesRelation(t)
	r.SetMode(OffPath)
	got, err := r.Holds("Patricia")
	must(t, err)
	if !got {
		t.Error("off-path: Patricia should fly")
	}
}

// TestAppendixOnPathPatricia: under on-path preemption, Patricia's
// Galapagos-penguin path keeps the Penguin negation as an immediate
// predecessor (the appendix: "it may or may not be able to fly"), so the
// evaluation reports a conflict.
func TestAppendixOnPathPatricia(t *testing.T) {
	r := fliesRelation(t)
	r.SetMode(OnPath)
	_, err := r.Evaluate(Item{"Patricia"})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("on-path Patricia: got %v, want ConflictError", err)
	}
	if len(ce.Binders) != 2 {
		t.Errorf("on-path Patricia binders = %v, want 2", ce.Binders)
	}
}

// TestAppendixOnPathPamela: Pamela is only an amazing flying penguin, so
// every path from Penguin to Pamela passes through AFP and she flies even
// under on-path preemption.
func TestAppendixOnPathPamela(t *testing.T) {
	r := fliesRelation(t)
	r.SetMode(OnPath)
	got, err := r.Holds("Pamela")
	must(t, err)
	if !got {
		t.Error("on-path: Pamela should fly")
	}
	// Peter has an exact tuple: it wins under every semantics.
	got, err = r.Holds("Peter")
	must(t, err)
	if !got {
		t.Error("on-path: Peter should fly")
	}
}

// TestAppendixNoPreemption: with no preemption, any sign disagreement among
// applicable tuples is a conflict — even plain exceptions like Paul.
func TestAppendixNoPreemption(t *testing.T) {
	r := fliesRelation(t)
	r.SetMode(NoPreemption)
	var ce *ConflictError
	if _, err := r.Evaluate(Item{"Paul"}); !errors.As(err, &ce) {
		t.Fatalf("no-preemption Paul: got %v, want ConflictError", err)
	}
	// Tweety sees only the Bird tuple: no conflict.
	got, err := r.Holds("Tweety")
	must(t, err)
	if !got {
		t.Error("no-preemption: Tweety should fly")
	}
	// Peter's exact tuple still wins.
	got, err = r.Holds("Peter")
	must(t, err)
	if !got {
		t.Error("no-preemption: Peter should fly")
	}
}

// TestAppendixRedundantEdgePamela reproduces the appendix's redundant-link
// example: adding the (redundant) is-a edge Penguin→Pamela makes Penguin an
// immediate predecessor of Pamela in her tuple-binding graph, so AFP no
// longer preempts Penguin and Pamela's evaluation conflicts — even under
// off-path preemption.
func TestAppendixRedundantEdgePamela(t *testing.T) {
	r := fliesRelation(t)
	h := r.Schema().Attr(0).Domain
	must(t, h.AddEdge("Penguin", "Pamela"))
	_, err := r.Evaluate(Item{"Pamela"})
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("redundant-edge Pamela: got %v, want ConflictError", err)
	}
	// Patricia is unaffected by Pamela's extra edge.
	got, err := r.Holds("Patricia")
	must(t, err)
	if !got {
		t.Error("Patricia should still fly")
	}
}

// TestAppendixPreference: a preference edge resolves a multiple-inheritance
// conflict by making one class's tuples bind more strongly.
func TestAppendixPreference(t *testing.T) {
	r := fliesRelation(t)
	h := r.Schema().Attr(0).Domain
	// Create a conflict: assert that Galapagos penguins cannot fly; then
	// Patricia (GP and AFP) has two opposite immediate predecessors.
	must(t, r.Deny("GalapagosPenguin"))
	var ce *ConflictError
	if _, err := r.Evaluate(Item{"Patricia"}); !errors.As(err, &ce) {
		t.Fatalf("expected conflict at Patricia, got %v", err)
	}
	// Prefer AmazingFlyingPenguin over GalapagosPenguin: Patricia flies.
	must(t, h.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"))
	got, err := r.Holds("Patricia")
	must(t, err)
	if !got {
		t.Error("with preference AFP>GP, Patricia should fly")
	}
	// Paul (GP only) is unaffected.
	got, err = r.Holds("Paul")
	must(t, err)
	if got {
		t.Error("Paul should still not fly")
	}
}

// TestFastPathMatchesElimination: on the paper's own fixtures, the fast
// minimal-applicable path and the literal product-graph elimination must
// agree for every item.
func TestFastPathMatchesElimination(t *testing.T) {
	rels := []*Relation{fliesRelation(t), respectsRelation(t), colorRelation(t)}
	for _, r := range rels {
		if !r.fastPathOK() {
			t.Fatalf("%s: fixture should be irredundant", r.Name())
		}
		items := allItems(r.Schema())
		for _, item := range items {
			applicable := r.Applicable(item)
			if len(applicable) == 0 {
				continue
			}
			if _, exact := r.Lookup(item); exact {
				continue
			}
			fast := r.minimalTuples(applicable)
			slow, err := r.bindersByElimination(item, applicable, false)
			if err != nil {
				t.Fatalf("%s %v: %v", r.Name(), item, err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("%s %v: fast %v vs slow %v", r.Name(), item, fast, slow)
			}
			for i := range fast {
				if !fast[i].Item.Equal(slow[i].Item) || fast[i].Sign != slow[i].Sign {
					t.Fatalf("%s %v: fast %v vs slow %v", r.Name(), item, fast, slow)
				}
			}
		}
	}
}

// allItems enumerates every item (all node combinations) of a schema.
func allItems(s *Schema) []Item {
	var pools [][]string
	for i := 0; i < s.Arity(); i++ {
		pools = append(pools, s.Attr(i).Domain.Nodes())
	}
	var out []Item
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == s.Arity() {
			out = append(out, prefix.Clone())
			return
		}
		for _, n := range pools[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, s.Arity()), 0)
	return out
}

// TestTupleBindingGraphPatricia reproduces Figure 1d: Patricia's tuple-
// binding graph has the three applicable tuples with AFP as the only
// binder, Bird→Penguin→AFP as the spine.
func TestTupleBindingGraphPatricia(t *testing.T) {
	r := fliesRelation(t)
	bg, err := r.TupleBindingGraph(Item{"Patricia"})
	must(t, err)
	if len(bg.Nodes) != 3 {
		t.Fatalf("nodes = %v, want 3", bg.Nodes)
	}
	if len(bg.Binders) != 1 || bg.Nodes[bg.Binders[0]].Item[0] != "AmazingFlyingPenguin" {
		t.Fatalf("binders = %v", bg.Binders)
	}
	// Expect edges Bird→Penguin, Penguin→AFP, AFP→item.
	var spine int
	for _, e := range bg.Edges {
		if e[1] == -1 {
			continue
		}
		from, to := bg.Nodes[e[0]].Item[0], bg.Nodes[e[1]].Item[0]
		if from == "Bird" && to == "Penguin" || from == "Penguin" && to == "AmazingFlyingPenguin" {
			spine++
		} else {
			t.Errorf("unexpected edge %s → %s", from, to)
		}
	}
	if spine != 2 {
		t.Errorf("spine edges = %d, want 2", spine)
	}
}

// TestHoldsOnClassesQuantifiesUniversally: a class item is true iff the
// strongest binder says so — storing one tuple for a class answers queries
// about the class itself (§1's succinctness claim).
func TestHoldsOnClassesQuantifiesUniversally(t *testing.T) {
	r := fliesRelation(t)
	got, err := r.Holds("Bird")
	must(t, err)
	if !got {
		t.Error("Holds(Bird) = false")
	}
	got, err = r.Holds("Penguin")
	must(t, err)
	if got {
		t.Error("Holds(Penguin) = true")
	}
}

func TestPreemptionString(t *testing.T) {
	if OffPath.String() != "off-path" || OnPath.String() != "on-path" || NoPreemption.String() != "none" {
		t.Error("Preemption.String names wrong")
	}
	if Preemption(9).String() == "" {
		t.Error("unknown mode should still render")
	}
}
