package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hrdb/internal/hierarchy"
)

// twoAttrRelation builds a relation over two small hierarchies with a mix
// of class- and instance-level tuples.
func twoAttrRelation(t *testing.T) *Relation {
	t.Helper()
	hx := hierarchy.New("X")
	hy := hierarchy.New("Y")
	for c := 0; c < 4; c++ {
		if err := hx.AddClass(fmt.Sprintf("xc%d", c)); err != nil {
			t.Fatal(err)
		}
		if err := hy.AddClass(fmt.Sprintf("yc%d", c)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := hx.AddInstance(fmt.Sprintf("xc%d_i%d", c, i), fmt.Sprintf("xc%d", c)); err != nil {
				t.Fatal(err)
			}
			if err := hy.AddInstance(fmt.Sprintf("yc%d_i%d", c, i), fmt.Sprintf("yc%d", c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	r := NewRelation("r", MustSchema(
		Attribute{Name: "A", Domain: hx},
		Attribute{Name: "B", Domain: hy},
	))
	return r
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	r := twoAttrRelation(t)
	if err := r.Assert("xc0", "yc1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Assert("xc0", "yc2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Deny("xc0_i1", "yc1_i0"); err != nil {
		t.Fatal(err)
	}
	if got := r.DistinctValues(0); got != 2 { // xc0, xc0_i1
		t.Fatalf("DistinctValues(0) = %d, want 2", got)
	}
	if got := r.DistinctValues(1); got != 3 { // yc1, yc2, yc1_i0
		t.Fatalf("DistinctValues(1) = %d, want 3", got)
	}
	if got := r.PostingCount(0, "xc0"); got != 2 {
		t.Fatalf("PostingCount(0, xc0) = %d, want 2", got)
	}
	if got := r.PostingCount(1, "yc2"); got != 1 {
		t.Fatalf("PostingCount(1, yc2) = %d, want 1", got)
	}
	if got := r.PostingCount(1, "nope"); got != 0 {
		t.Fatalf("PostingCount of absent value = %d, want 0", got)
	}
	// Retract drains the posting lists of every column.
	if !r.Retract(Item{"xc0", "yc2"}) {
		t.Fatal("Retract failed")
	}
	if got := r.PostingCount(0, "xc0"); got != 1 {
		t.Fatalf("after retract: PostingCount(0, xc0) = %d, want 1", got)
	}
	if got := r.DistinctValues(1); got != 2 {
		t.Fatalf("after retract: DistinctValues(1) = %d, want 2", got)
	}
	// Out-of-range columns are a harmless zero, not a panic.
	if r.DistinctValues(-1) != 0 || r.DistinctValues(9) != 0 || r.PostingCount(9, "x") != 0 {
		t.Fatal("out-of-range column not tolerated")
	}
	// Clone rebuilds the same index.
	c := r.Clone()
	if got, want := c.DistinctValues(0), r.DistinctValues(0); got != want {
		t.Fatalf("clone DistinctValues(0) = %d, want %d", got, want)
	}
	if got, want := c.PostingCount(1, "yc1"), r.PostingCount(1, "yc1"); got != want {
		t.Fatalf("clone PostingCount = %d, want %d", got, want)
	}
}

func TestOverlapCandidatesMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := MustSchema(
		Attribute{Name: "A", Domain: randomHierarchy(rng, "DA", 25)},
		Attribute{Name: "B", Domain: randomHierarchy(rng, "DB", 15)},
	)
	r := randomConsistentRelation(rng, "r", s, 40)
	for attr := 0; attr < r.Schema().Arity(); attr++ {
		h := r.Schema().Attr(attr).Domain
		for _, class := range h.Nodes() {
			var want []Tuple
			for _, tp := range r.Tuples() {
				if h.Overlaps(tp.Item[attr], class) {
					want = append(want, tp)
				}
			}
			got := r.OverlapCandidates(attr, class)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("OverlapCandidates(%d, %q): got %d tuples, scan found %d",
					attr, class, len(got), len(want))
			}
		}
	}
	if got := r.OverlapCandidates(0, "no-such-class"); got != nil {
		t.Fatalf("unknown class: got %v, want nil", got)
	}
	if got := r.OverlapCandidates(-1, "x"); got != nil {
		t.Fatalf("bad column: got %v, want nil", got)
	}
}

func TestStatsReflectWarmth(t *testing.T) {
	r := twoAttrRelation(t)
	if err := r.Assert("xc0", "yc0"); err != nil {
		t.Fatal(err)
	}
	stats := r.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats arity = %d, want 2", len(stats))
	}
	if stats[0].Attr != "A" || stats[0].Tuples != 1 || stats[0].Distinct != 1 {
		t.Fatalf("stats[0] = %+v", stats[0])
	}
	if stats[0].Warm {
		t.Fatal("fresh hierarchy reported warm")
	}
	r.Schema().Attr(0).Domain.Warm()
	if !r.Stats()[0].Warm {
		t.Fatal("warmed hierarchy reported cold")
	}
}

// TestApplicableChoosesCheapestColumn pins the multi-attribute probe: when
// one column's buckets are much smaller, results still match the reference
// scan exactly.
func TestApplicableChoosesCheapestColumn(t *testing.T) {
	r := twoAttrRelation(t)
	// Column A is all the same value (one fat bucket); column B spreads.
	for c := 0; c < 4; c++ {
		if err := r.Assert("xc0", fmt.Sprintf("yc%d", c)); err != nil {
			t.Fatal(err)
		}
	}
	for _, probe := range []Item{
		{"xc0_i0", "yc1_i2"},
		{"xc0", "yc1"},
		{"xc3_i1", "yc0_i0"},
	} {
		got := r.Applicable(probe)
		want := r.applicableByScan(probe)
		if len(got) != len(want) {
			t.Fatalf("Applicable(%v) = %d tuples, scan = %d", probe, len(got), len(want))
		}
		for i := range got {
			if !got[i].Item.Equal(want[i].Item) || got[i].Sign != want[i].Sign {
				t.Fatalf("Applicable(%v)[%d] = %v, want %v", probe, i, got[i], want[i])
			}
		}
	}
}
