package core

import (
	"context"
	"fmt"
	"sort"
)

// This file implements the paper's second new relational operator,
// Explicate (§3.3.2): flatten a relation so that the specified attributes
// hold only atomic (leaf) values, preserving the extension exactly.
//
// The algorithm follows the paper: traverse the relation's subsumption
// graph in reverse topologically sorted order (most specific tuples first);
// for the tuple at each node, enumerate the membership of the classes in
// the attributes being explicated; insert each enumerated tuple unless a
// tuple for the same item has already been inserted (the earlier, more
// specific source wins).

// Explicate returns a relation with the same extension in which every
// listed attribute holds only leaf values. With no attributes listed, all
// attributes are explicated; the negated tuples that remain afterwards are
// redundant (their only predecessor is the universal negated tuple) and can
// be removed with a following Consolidate, exactly as the paper describes.
//
// The result is capped: if the enumeration would produce more than
// maxProductNodes tuples, ErrTooLarge is returned.
func (r *Relation) Explicate(attrs ...string) (*Relation, error) {
	return r.ExplicateContext(context.Background(), attrs...)
}

// ExplicateContext is Explicate with cancellation: a long enumeration is
// abandoned with ctx's error at the next tuple boundary.
func (r *Relation) ExplicateContext(ctx context.Context, attrs ...string) (*Relation, error) {
	cols := make([]int, 0, len(attrs))
	if len(attrs) == 0 {
		for i := 0; i < r.schema.Arity(); i++ {
			cols = append(cols, i)
		}
	} else {
		for _, a := range attrs {
			i, ok := r.schema.Index(a)
			if !ok {
				return nil, fmt.Errorf("%w: no attribute %q in %q", ErrUnknownAttribute, a, r.name)
			}
			cols = append(cols, i)
		}
		sort.Ints(cols)
	}
	explicated := make([]bool, r.schema.Arity())
	for _, c := range cols {
		explicated[c] = true
	}

	out := NewRelation(r.name, r.schema)
	out.mode = r.mode
	ordered := r.sortMostSpecificFirst(r.Tuples())
	inserted := 0
	for _, t := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Enumerate leaves for the explicated coordinates.
		perAttr := make([][]string, r.schema.Arity())
		for i, v := range t.Item {
			if explicated[i] {
				perAttr[i] = r.schema.attrs[i].Domain.Leaves(v)
			} else {
				perAttr[i] = []string{v}
			}
		}
		var rec func(prefix Item, i int) error
		rec = func(prefix Item, i int) error {
			if i == r.schema.Arity() {
				item := prefix.Clone()
				if _, present := out.Lookup(item); present {
					return nil // a more specific tuple already decided this item
				}
				if inserted >= maxProductNodes {
					return fmt.Errorf("%w: explication of %q exceeds %d tuples",
						ErrTooLarge, r.name, maxProductNodes)
				}
				inserted++
				return out.Insert(item, t.Sign)
			}
			for _, n := range perAttr[i] {
				if err := rec(append(prefix, n), i+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(make(Item, 0, r.schema.Arity()), 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Extension returns the relation's unique flat extension — the sorted
// atomic items for which the relation holds (§3, "every hierarchical
// relation must be equivalent to a unique flat relation"). It is computed
// by full explication followed by dropping the (now redundant) negated
// tuples. ErrTooLarge is returned if the extension exceeds
// maxProductNodes items.
func (r *Relation) Extension() ([]Item, error) {
	return r.ExtensionContext(context.Background())
}

// ExtensionContext is Extension with cancellation.
func (r *Relation) ExtensionContext(ctx context.Context) ([]Item, error) {
	flat, err := r.ExplicateContext(ctx)
	if err != nil {
		return nil, err
	}
	var out []Item
	for _, t := range flat.Tuples() {
		if t.Sign {
			out = append(out, t.Item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// AtomicItems enumerates every atomic item of the relation's schema — the
// full product of the attribute domains' leaves — in sorted order.
// ErrTooLarge is returned if the product exceeds maxProductNodes.
func (r *Relation) AtomicItems() ([]Item, error) {
	k := r.schema.Arity()
	perAttr := make([][]string, k)
	size := 1
	for i := 0; i < k; i++ {
		leaves := r.schema.attrs[i].Domain.AllLeaves()
		sort.Strings(leaves)
		perAttr[i] = leaves
		size *= len(leaves)
		if size > maxProductNodes {
			return nil, fmt.Errorf("%w: atomic-item space of %q exceeds %d items",
				ErrTooLarge, r.name, maxProductNodes)
		}
	}
	out := make([]Item, 0, size)
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == k {
			out = append(out, prefix.Clone())
			return
		}
		for _, n := range perAttr[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, k), 0)
	return out, nil
}

// ExtensionByEvaluation computes the extension by bulk-evaluating every
// atomic item of the schema through EvaluateBatch, instead of by the
// paper's explication rewrite. Both agree on consistent relations (that
// equivalence is exercised by tests); this path parallelizes across cores
// and honors cancellation, which suits wide, shallow relations, while
// Explicate suits relations whose tuples cover the space sparsely.
func (r *Relation) ExtensionByEvaluation(ctx context.Context, opts ...BatchOption) ([]Item, error) {
	atoms, err := r.AtomicItems()
	if err != nil {
		return nil, err
	}
	verdicts, err := r.EvaluateBatch(ctx, atoms, opts...)
	if err != nil {
		return nil, err
	}
	var out []Item
	for i, v := range verdicts {
		if v.Value {
			out = append(out, atoms[i])
		}
	}
	return out, nil
}

// ExtensionSize returns the number of atomic items in the extension.
func (r *Relation) ExtensionSize() (int, error) {
	ext, err := r.Extension()
	if err != nil {
		return 0, err
	}
	return len(ext), nil
}
