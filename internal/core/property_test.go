package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomSchema builds a 1–2 attribute schema over random irredundant
// hierarchies.
func randomSchema(rng *rand.Rand) *Schema {
	attrs := []Attribute{{Name: "A0", Domain: randomHierarchy(rng, "D0", 4+rng.Intn(6))}}
	if rng.Intn(2) == 0 {
		attrs = append(attrs, Attribute{Name: "A1", Domain: randomHierarchy(rng, "D1", 3+rng.Intn(5))})
	}
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// TestPropertyConsolidatePreservesExtension: on random consistent
// relations, Consolidate never changes the extension and is idempotent.
func TestPropertyConsolidatePreservesExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		s := randomSchema(rng)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(8))
		c := r.Consolidate()
		if !reflect.DeepEqual(extensionByEnumeration(t, r), extensionByEnumeration(t, c)) {
			t.Fatalf("trial %d: consolidation changed extension\nbefore: %v\nafter:  %v",
				trial, r.Tuples(), c.Tuples())
		}
		if c.Len() > r.Len() {
			t.Fatalf("trial %d: consolidation grew the relation", trial)
		}
		c2 := c.Consolidate()
		if !reflect.DeepEqual(c.Tuples(), c2.Tuples()) {
			t.Fatalf("trial %d: consolidation not idempotent", trial)
		}
	}
}

// TestPropertyConsolidateMinimal: after consolidation, no tuple is
// redundant (the paper's unique-minimum claim implies a fixpoint).
func TestPropertyConsolidateMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		s := randomSchema(rng)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(8))
		c := r.Consolidate()
		if red := c.RedundantTuples(); len(red) != 0 {
			t.Fatalf("trial %d: redundant tuples survive consolidation: %v", trial, red)
		}
	}
}

// TestPropertyExplicatePreservesExtension: full explication preserves the
// extension and produces only atomic items; a following consolidate also
// preserves it.
func TestPropertyExplicatePreservesExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 60; trial++ {
		s := randomSchema(rng)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(8))
		want := extensionByEnumeration(t, r)

		flat, err := r.Explicate()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, tu := range flat.Tuples() {
			if !flat.IsAtomic(tu.Item) {
				t.Fatalf("trial %d: non-atomic %v", trial, tu)
			}
		}
		if got := extensionByEnumeration(t, flat); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: explication changed extension\ntuples: %v\n got %v\nwant %v",
				trial, r.Tuples(), got, want)
		}
		if got := extensionByEnumeration(t, flat.Consolidate()); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: explicate+consolidate changed extension", trial)
		}
	}
}

// TestPropertyExplicatePartialPreservesExtension: explicating a random
// subset of attributes preserves the extension.
func TestPropertyExplicatePartialPreservesExtension(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		s := randomSchema(rng)
		if s.Arity() < 2 {
			continue
		}
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(8))
		want := extensionByEnumeration(t, r)
		part, err := r.Explicate(s.Attr(rng.Intn(s.Arity())).Name)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := extensionByEnumeration(t, part); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: partial explication changed extension\ntuples: %v",
				trial, r.Tuples())
		}
	}
}

// TestPropertyFastPathMatchesElimination: on random irredundant
// hierarchies, the fast minimal-applicable binder computation agrees with
// the literal product-graph node-elimination construction for random items.
func TestPropertyFastPathMatchesElimination(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		s := randomSchema(rng)
		r := randomConsistentRelation(rng, "R", s, 2+rng.Intn(8))
		if !r.fastPathOK() {
			t.Fatalf("trial %d: random hierarchy unexpectedly redundant", trial)
		}
		var pools [][]string
		for i := 0; i < s.Arity(); i++ {
			pools = append(pools, s.Attr(i).Domain.Nodes())
		}
		for probe := 0; probe < 10; probe++ {
			item := make(Item, s.Arity())
			for i := range item {
				item[i] = pools[i][rng.Intn(len(pools[i]))]
			}
			applicable := r.Applicable(item)
			if len(applicable) == 0 {
				continue
			}
			if _, exact := r.Lookup(item); exact {
				continue
			}
			fast := r.minimalTuples(applicable)
			slow, err := r.bindersByElimination(item, applicable, false)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("trial %d item %v:\nfast %v\nslow %v\ntuples %v",
					trial, item, fast, slow, r.Tuples())
			}
		}
	}
}

// TestPropertyUpwardCompatibility (§1): a relation with only atomic
// positive tuples behaves exactly like a flat relation — its extension is
// its tuple set.
func TestPropertyUpwardCompatibility(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		s := randomSchema(rng)
		r := NewRelation("Flat", s)
		var pools [][]string
		for i := 0; i < s.Arity(); i++ {
			pools = append(pools, s.Attr(i).Domain.AllLeaves())
		}
		for n := 0; n < 5; n++ {
			item := make(Item, s.Arity())
			for i := range item {
				item[i] = pools[i][rng.Intn(len(pools[i]))]
			}
			if err := r.Insert(item, true); err != nil {
				t.Fatal(err)
			}
		}
		ext, err := r.Extension()
		if err != nil {
			t.Fatal(err)
		}
		if len(ext) != r.Len() {
			t.Fatalf("trial %d: flat relation extension %d != tuples %d", trial, len(ext), r.Len())
		}
		for _, it := range ext {
			if _, ok := r.Lookup(it); !ok {
				t.Fatalf("trial %d: extension item %v not a stored tuple", trial, it)
			}
		}
		if len(r.Conflicts()) != 0 {
			t.Fatalf("trial %d: flat relation cannot conflict", trial)
		}
	}
}

// TestPropertyConflictCheckerMatchesEnumeration: the pairwise consistency
// checker agrees with brute-force enumeration of all items (atomic and
// composite) on random relations — including inconsistent ones.
func TestPropertyConflictCheckerMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		s := randomSchema(rng)
		r := NewRelation("R", s)
		var pools [][]string
		for i := 0; i < s.Arity(); i++ {
			pools = append(pools, s.Attr(i).Domain.Nodes())
		}
		for n := 0; n < 2+rng.Intn(8); n++ {
			item := make(Item, s.Arity())
			for i := range item {
				item[i] = pools[i][rng.Intn(len(pools[i]))]
			}
			_ = r.Insert(item, rng.Intn(2) == 0) // contradictions skipped
		}

		// Brute force: any item (over all node combinations) that conflicts.
		bruteConflict := false
		for _, item := range allItems(s) {
			if _, err := r.Evaluate(item); err != nil {
				if _, ok := err.(*ConflictError); ok {
					bruteConflict = true
					break
				}
			}
		}
		pairwise := len(r.Conflicts()) > 0
		if pairwise != bruteConflict {
			t.Fatalf("trial %d: pairwise=%v brute=%v\ntuples %v",
				trial, pairwise, bruteConflict, r.Tuples())
		}
	}
}

// TestPropertyConflictCheckerRedundantEdges: with a deliberately redundant
// hierarchy edge, conflicts can appear at composite items even when every
// atom is clean; the checker must still agree with brute-force enumeration
// over all items.
func TestPropertyConflictCheckerRedundantEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		s := randomSchema(rng)
		// Inject a redundant edge into the first hierarchy: root → some
		// node that is not already a direct child of the root.
		h := s.Attr(0).Domain
		nodes := h.Nodes()
		for _, n := range nodes {
			if n != h.Domain() && !contains0(h.Parents(n), h.Domain()) {
				if err := h.AddEdge(h.Domain(), n); err == nil {
					break
				}
			}
		}
		r := NewRelation("R", s)
		var pools [][]string
		for i := 0; i < s.Arity(); i++ {
			pools = append(pools, s.Attr(i).Domain.Nodes())
		}
		for n := 0; n < 2+rng.Intn(6); n++ {
			item := make(Item, s.Arity())
			for i := range item {
				item[i] = pools[i][rng.Intn(len(pools[i]))]
			}
			_ = r.Insert(item, rng.Intn(2) == 0)
		}
		bruteConflict := false
		for _, item := range allItems(s) {
			if _, err := r.Evaluate(item); err != nil {
				if _, ok := err.(*ConflictError); ok {
					bruteConflict = true
					break
				}
			}
		}
		pairwise := len(r.Conflicts()) > 0
		if pairwise != bruteConflict {
			t.Fatalf("trial %d: pairwise=%v brute=%v\ntuples %v\nredundant edges %v",
				trial, pairwise, bruteConflict, r.Tuples(), h.RedundantEdges())
		}
	}
}

func contains0(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestPropertyApplicableIndexMatchesScan: the first-attribute index must
// return exactly what the full scan returns, for random relations, random
// items, and after retractions.
func TestPropertyApplicableIndexMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 40; trial++ {
		s := randomSchema(rng)
		r := randomConsistentRelation(rng, "R", s, 3+rng.Intn(8))
		// Mutate a little so the index sees removals too.
		ts := r.Tuples()
		if len(ts) > 2 {
			r.Retract(ts[rng.Intn(len(ts))].Item)
		}
		var pools [][]string
		for i := 0; i < s.Arity(); i++ {
			pools = append(pools, s.Attr(i).Domain.Nodes())
		}
		for probe := 0; probe < 12; probe++ {
			item := make(Item, s.Arity())
			for i := range item {
				item[i] = pools[i][rng.Intn(len(pools[i]))]
			}
			got := r.Applicable(item)
			want := r.applicableByScan(item)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d item %v:\nindex %v\nscan  %v\ntuples %v",
					trial, item, got, want, r.Tuples())
			}
		}
	}
}

// TestTableRendering: stable, contains headers, signs and ∀ markers.
func TestTableRendering(t *testing.T) {
	r := respectsRelation(t)
	tab := r.Table()
	if tab != r.Table() {
		t.Fatal("Table not deterministic")
	}
	for _, want := range []string{"Respects", "Student", "Teacher", "∀ObsequiousStudent", "+", "-"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	// The general tuples come first.
	first := strings.Index(tab, "∀Student")
	last := strings.Index(tab, "∀IncoherentTeacher")
	if first < 0 || last < 0 {
		t.Fatalf("table:\n%s", tab)
	}
}

// TestDisplayValue: leaves bare, classes with ∀.
func TestDisplayValue(t *testing.T) {
	r := fliesRelation(t)
	if got := r.DisplayValue(0, "Tweety"); got != "Tweety" {
		t.Errorf("leaf: %q", got)
	}
	if got := r.DisplayValue(0, "Bird"); got != "∀Bird" {
		t.Errorf("class: %q", got)
	}
}

// TestCloneAndWithName: copies are independent.
func TestCloneAndWithName(t *testing.T) {
	r := fliesRelation(t)
	c := r.WithName("Flies2")
	if c.Name() != "Flies2" || r.Name() != "Flies" {
		t.Fatal("rename leaked")
	}
	c.Retract(Item{"Bird"})
	if _, ok := r.Lookup(Item{"Bird"}); !ok {
		t.Fatal("clone mutation leaked into original")
	}
}

// TestSchemaBasics covers schema validation and accessors.
func TestSchemaBasics(t *testing.T) {
	h := animalHierarchy(t)
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Attribute{Name: "", Domain: h}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema(Attribute{Name: "A"}); err == nil {
		t.Error("nil domain accepted")
	}
	if _, err := NewSchema(Attribute{Name: "A", Domain: h}, Attribute{Name: "A", Domain: h}); err == nil {
		t.Error("duplicate name accepted")
	}
	s := MustSchema(Attribute{Name: "A", Domain: h}, Attribute{Name: "B", Domain: h})
	if s.Arity() != 2 || s.Attr(1).Name != "B" {
		t.Error("accessors wrong")
	}
	if i, ok := s.Index("B"); !ok || i != 1 {
		t.Error("Index wrong")
	}
	if !reflect.DeepEqual(s.Names(), []string{"A", "B"}) {
		t.Error("Names wrong")
	}
	s2 := MustSchema(Attribute{Name: "A", Domain: h}, Attribute{Name: "B", Domain: h})
	if !s.Equal(s2) {
		t.Error("equal schemas not Equal")
	}
	h2 := animalHierarchy(t)
	s3 := MustSchema(Attribute{Name: "A", Domain: h2}, Attribute{Name: "B", Domain: h2})
	if s.Equal(s3) {
		t.Error("different hierarchies considered Equal")
	}
	if s.Equal(nil) {
		t.Error("nil Equal")
	}
}

// TestItemHelpers covers Key/Equal/Clone/String.
func TestItemHelpers(t *testing.T) {
	a := Item{"x", "y"}
	b := a.Clone()
	b[0] = "z"
	if a[0] != "x" {
		t.Error("Clone aliases")
	}
	if a.Equal(Item{"x"}) || !a.Equal(Item{"x", "y"}) {
		t.Error("Equal wrong")
	}
	if a.Key() == (Item{"xy", ""}).Key() {
		t.Error("Key collision")
	}
	if a.String() != "(x, y)" {
		t.Errorf("String = %q", a.String())
	}
	tu := Tuple{Item: a, Sign: false}
	if tu.String() != "- (x, y)" {
		t.Errorf("Tuple.String = %q", tu.String())
	}
}

// TestModeAccessor: the preemption mode getter round-trips.
func TestModeAccessor(t *testing.T) {
	r := fliesRelation(t)
	if r.Mode() != OffPath {
		t.Fatalf("default mode = %v", r.Mode())
	}
	r.SetMode(NoPreemption)
	if r.Mode() != NoPreemption {
		t.Fatalf("mode = %v", r.Mode())
	}
}
