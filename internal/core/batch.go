package core

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hrdb/internal/obs"
)

// This file implements bulk evaluation: a worker pool fanning per-item
// Evaluate calls across cores. Results are always delivered in input order,
// and EvaluateBatch's error is deterministic (the lowest-index failure),
// regardless of goroutine scheduling. The relation must not be mutated
// while a batch call is in flight; the catalog package provides the
// read/write locking for shared use.

// batchConfig holds the resolved options of one bulk-evaluation call.
type batchConfig struct {
	parallelism int
	cache       bool
	mode        Preemption
	tracer      obs.Tracer
}

// BatchOption configures a bulk-evaluation call (functional options).
type BatchOption func(*batchConfig)

// WithParallelism sets the number of worker goroutines. Values below 1
// select the default, runtime.GOMAXPROCS(0).
func WithParallelism(n int) BatchOption {
	return func(c *batchConfig) {
		if n >= 1 {
			c.parallelism = n
		}
	}
}

// WithCache overrides the relation's verdict-cache setting for this call.
func WithCache(enabled bool) BatchOption {
	return func(c *batchConfig) { c.cache = enabled }
}

// WithPreemption overrides the relation's preemption mode for this call.
// Cached verdicts are stamped with the mode, so overriding never pollutes
// the memo for other modes.
func WithPreemption(p Preemption) BatchOption {
	return func(c *batchConfig) { c.mode = p }
}

// WithTracer reports a completed span per bulk-evaluation call to t
// ("core.EvaluateBatch" / "core.EvaluateEach", with the batch size, mode,
// and any error). A nil tracer — the default — costs nothing.
func WithTracer(t obs.Tracer) BatchOption {
	return func(c *batchConfig) { c.tracer = t }
}

// batchConfigFor resolves options against the relation's defaults.
func (r *Relation) batchConfigFor(opts []BatchOption) batchConfig {
	cfg := batchConfig{
		parallelism: runtime.GOMAXPROCS(0),
		cache:       !r.cacheOff,
		mode:        r.mode,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// observeBatch records the per-call batch metrics and, when the call was
// configured with a tracer, emits its span. Batch entry is a cold path, so
// the timing is unconditional (one time.Now/Since pair per call).
func observeBatch(cfg batchConfig, name string, n int, start time.Time, err error) {
	metricBatches.Inc()
	metricBatchSize.Observe(int64(n))
	if cfg.tracer != nil {
		cfg.tracer.Span(obs.Span{
			Name:     name,
			Start:    start,
			Duration: time.Since(start),
			Attrs: []obs.Label{
				{Key: "items", Value: strconv.Itoa(n)},
				{Key: "mode", Value: cfg.mode.String()},
			},
			Err: err,
		})
	}
}

// warmForBatch builds every lazily memoized hierarchy structure once, on the
// calling goroutine, so the workers start from read-only state instead of
// racing to construct it.
func (r *Relation) warmForBatch() {
	for _, a := range r.schema.attrs {
		a.Domain.Warm()
	}
}

// fanOut runs do(i) for i in [0, n) across the given number of workers,
// stopping early when stop returns true. With one worker it runs inline.
//
// The stop check precedes the index claim, so a claimed index ALWAYS runs
// to completion. Combined with the monotone atomic counter this is what
// makes batch errors deterministic: when index i fails, every index below
// i was claimed earlier and therefore fully evaluated, so taking the
// minimum failing index over the completed work yields the same answer as
// a sequential scan.
func fanOut(n, workers int, stop func() bool, do func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n && !stop(); i++ {
			do(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				do(i)
			}
		}()
	}
	wg.Wait()
}

// EvaluateBatch evaluates every item concurrently and returns the verdicts
// in input order. The first failure — by input index, not by wall clock —
// cancels the remaining work and is returned; partial results are
// discarded. Cancelling ctx aborts the batch with ctx's error.
func (r *Relation) EvaluateBatch(ctx context.Context, items []Item, opts ...BatchOption) (_ []Verdict, retErr error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := r.batchConfigFor(opts)
	n := len(items)
	verdicts := make([]Verdict, n)
	if n == 0 {
		// Same contract as n > 0: a cancelled context yields (nil, err),
		// never both a non-nil slice and a non-nil error.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return verdicts, nil
	}
	start := time.Now()
	defer func() { observeBatch(cfg, "core.EvaluateBatch", n, start, retErr) }()
	r.warmForBatch()

	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		failed   atomic.Bool
	)
	stop := func() bool { return failed.Load() || ctx.Err() != nil }
	fanOut(n, cfg.parallelism, stop, func(i int) {
		v, err := r.evaluate(items[i], cfg.mode, cfg.cache)
		if err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
			failed.Store(true)
			return
		}
		verdicts[i] = v
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		// Deterministic: see fanOut — every index below firstIdx ran to
		// completion, so the minimum above equals the sequential answer.
		return nil, firstErr
	}
	return verdicts, nil
}

// EvaluateEach evaluates every item concurrently, collecting each item's
// verdict and error positionally instead of cancelling on failure. Use it
// when per-item errors are data — e.g. three-valued logic mapping
// ambiguity conflicts to "unknown". The returned error is non-nil only
// when ctx was cancelled before completion.
func (r *Relation) EvaluateEach(ctx context.Context, items []Item, opts ...BatchOption) (_ []Verdict, _ []error, retErr error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := r.batchConfigFor(opts)
	n := len(items)
	verdicts := make([]Verdict, n)
	errs := make([]error, n)
	if n == 0 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return verdicts, errs, nil
	}
	start := time.Now()
	defer func() { observeBatch(cfg, "core.EvaluateEach", n, start, retErr) }()
	r.warmForBatch()

	stop := func() bool { return ctx.Err() != nil }
	fanOut(n, cfg.parallelism, stop, func(i int) {
		verdicts[i], errs[i] = r.evaluate(items[i], cfg.mode, cfg.cache)
	})
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return verdicts, errs, nil
}

// HoldsBatch is EvaluateBatch reduced to closed-world truth values.
func (r *Relation) HoldsBatch(ctx context.Context, items []Item, opts ...BatchOption) ([]bool, error) {
	vs, err := r.EvaluateBatch(ctx, items, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(vs))
	for i, v := range vs {
		out[i] = v.Value
	}
	return out, nil
}
