package core

import "hrdb/internal/obs"

// Engine metrics, registered on the obs default registry. They are
// process-wide: every relation in the process feeds the same series.
//
// Two hot paths are instrumented indirectly to keep their cost invisible:
//
//   - Cache hit/miss counters are flushed from the verdictCache's existing
//     per-relation counters in blocks of cacheFlushBlock lookups, under the
//     mutex the lookup already holds — the global atomics are touched once
//     per block, not once per lookup.
//   - Per-mode evaluation latency is sampled 1 in evalSampleMask+1: the
//     always-on evaluation counter's post-increment value decides whether
//     this call pays for the time.Now/Since pair.
var (
	metricCacheHits      = obs.Default().Counter("hrdb_core_cache_hits_total")
	metricCacheMisses    = obs.Default().Counter("hrdb_core_cache_misses_total")
	metricCacheEvictions = obs.Default().Counter("hrdb_core_cache_evictions_total")
	metricConflicts      = obs.Default().Counter("hrdb_core_conflicts_total")
	metricBatches        = obs.Default().Counter("hrdb_core_batches_total")
	metricBatchSize      = obs.Default().Histogram("hrdb_core_batch_size")

	metricEvals  [3]*obs.Counter
	metricEvalNS [3]*obs.Histogram
)

// cacheFlushBlock is how many cache lookups are batched between flushes of
// the per-cache hit/miss counters into the global ones. Must be a power of
// two.
const cacheFlushBlock = 64

// evalSampleMask samples evaluation latency 1 in (evalSampleMask + 1)
// uncached evaluations. Must be a power of two minus one.
const evalSampleMask = 7

func init() {
	for i, m := range []Preemption{OffPath, OnPath, NoPreemption} {
		label := obs.Label{Key: "mode", Value: m.String()}
		metricEvals[i] = obs.Default().Counter("hrdb_core_evals_total", label)
		metricEvalNS[i] = obs.Default().Histogram("hrdb_core_eval_duration_ns", label)
	}
}

// modeIndex maps a preemption mode to its metric slot (unknown modes share
// slot 0; they fail validation before reaching the evaluator proper).
func modeIndex(mode Preemption) int {
	if mode < OffPath || mode > NoPreemption {
		return 0
	}
	return int(mode)
}
