package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Seeded generators let testing/quick drive structured inputs: quick picks
// the seeds, the builders derandomize them into hierarchies and relations.

func relationFromSeed(seed int64) *Relation {
	rng := rand.New(rand.NewSource(seed))
	h := randomHierarchy(rng, "D", 5+rng.Intn(6))
	s := MustSchema(Attribute{Name: "X", Domain: h})
	r := NewRelation("R", s)
	nodes := h.Nodes()
	for n := 0; n < 2+rng.Intn(7); n++ {
		item := Item{nodes[rng.Intn(len(nodes))]}
		if _, ok := r.Lookup(item); ok {
			continue
		}
		if err := r.Insert(item, rng.Intn(2) == 0); err != nil {
			continue
		}
		if len(r.Conflicts()) > 0 {
			r.Retract(item)
		}
	}
	return r
}

// TestQuickConsolidateExtensionInvariant: ∀ seeds, consolidation preserves
// the extension and never grows the relation.
func TestQuickConsolidateExtensionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := relationFromSeed(seed)
		c := r.Consolidate()
		if c.Len() > r.Len() {
			return false
		}
		before, err := r.Extension()
		if err != nil {
			return false
		}
		after, err := c.Extension()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExplicateRoundTrip: ∀ seeds, explication yields an atomic
// relation with the same extension, and explicating twice is idempotent.
func TestQuickExplicateRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := relationFromSeed(seed)
		e1, err := r.Explicate()
		if err != nil {
			return false
		}
		for _, tu := range e1.Tuples() {
			if !e1.IsAtomic(tu.Item) {
				return false
			}
		}
		a, err := r.Extension()
		if err != nil {
			return false
		}
		b, err := e1.Extension()
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(a, b) {
			return false
		}
		e2, err := e1.Explicate()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(e1.Tuples(), e2.Tuples())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSubsumptionPartialOrder: ∀ seeds, item subsumption is a partial
// order on the relation's items.
func TestQuickSubsumptionPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := relationFromSeed(seed)
		h := r.Schema().Attr(0).Domain
		nodes := h.Nodes()
		for _, a := range nodes {
			if !r.Subsumes(Item{a}, Item{a}) {
				return false
			}
			for _, b := range nodes {
				if a != b && r.Subsumes(Item{a}, Item{b}) && r.Subsumes(Item{b}, Item{a}) {
					return false
				}
				for _, c := range nodes {
					if r.Subsumes(Item{a}, Item{b}) && r.Subsumes(Item{b}, Item{c}) &&
						!r.Subsumes(Item{a}, Item{c}) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertRetractRoundTrip: ∀ seeds and values, inserting then
// retracting a tuple restores the exact tuple set and the index.
func TestQuickInsertRetractRoundTrip(t *testing.T) {
	f := func(seed int64, pick uint8, sign bool) bool {
		r := relationFromSeed(seed)
		h := r.Schema().Attr(0).Domain
		nodes := h.Nodes()
		item := Item{nodes[int(pick)%len(nodes)]}
		if _, present := r.Lookup(item); present {
			return true // occupied: nothing to round-trip
		}
		before := r.Tuples()
		if err := r.Insert(item, sign); err != nil {
			return false
		}
		if !r.Retract(item) {
			return false
		}
		after := r.Tuples()
		if !reflect.DeepEqual(before, after) {
			return false
		}
		// The index agrees with a full scan afterwards.
		probe := Item{nodes[(int(pick)+1)%len(nodes)]}
		return reflect.DeepEqual(r.Applicable(probe), r.applicableByScan(probe))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvaluateNeverPanics: ∀ seeds and query picks, Evaluate returns
// a verdict or a typed error for every node of the domain, under every
// preemption mode.
func TestQuickEvaluateNeverPanics(t *testing.T) {
	f := func(seed int64, pick uint8, mode uint8) bool {
		r := relationFromSeed(seed)
		r.SetMode(Preemption(int(mode) % 3))
		h := r.Schema().Attr(0).Domain
		nodes := h.Nodes()
		item := Item{nodes[int(pick)%len(nodes)]}
		v, err := r.Evaluate(item)
		if err != nil {
			_, isConflict := err.(*ConflictError)
			return isConflict
		}
		// A default verdict must be false with no binders.
		if v.Default && (v.Value || len(v.Binders) != 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
