package core

import (
	"math/rand"
	"testing"

	"hrdb/internal/hierarchy"
)

// must is a test helper that fails fast on setup errors.
func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// animalHierarchy builds the Figure 1a class hierarchy.
func animalHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Bird"))
	must(t, h.AddClass("Canary", "Bird"))
	must(t, h.AddInstance("Tweety", "Canary"))
	must(t, h.AddClass("Penguin", "Bird"))
	must(t, h.AddClass("GalapagosPenguin", "Penguin"))
	must(t, h.AddClass("AmazingFlyingPenguin", "Penguin"))
	must(t, h.AddInstance("Paul", "GalapagosPenguin"))
	must(t, h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	must(t, h.AddInstance("Peter", "AmazingFlyingPenguin"))
	return h
}

// fliesRelation builds the Figure 1b relation: birds fly, penguins do not,
// amazing flying penguins do, and Peter (specifically) does.
func fliesRelation(t *testing.T) *Relation {
	t.Helper()
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Flies", s)
	must(t, r.Assert("Bird"))
	must(t, r.Deny("Penguin"))
	must(t, r.Assert("AmazingFlyingPenguin"))
	must(t, r.Assert("Peter"))
	return r
}

// studentHierarchy builds Figure 2a.
func studentHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Student")
	must(t, h.AddClass("ObsequiousStudent"))
	must(t, h.AddInstance("John", "ObsequiousStudent"))
	must(t, h.AddInstance("Esther", "ObsequiousStudent"))
	return h
}

// teacherHierarchy builds Figure 2b.
func teacherHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Teacher")
	must(t, h.AddClass("IncoherentTeacher"))
	must(t, h.AddInstance("Fagin", "IncoherentTeacher"))
	return h
}

// respectsRelation builds the Figure 3 relation (with the conflict-resolving
// third tuple).
func respectsRelation(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(
		Attribute{Name: "Student", Domain: studentHierarchy(t)},
		Attribute{Name: "Teacher", Domain: teacherHierarchy(t)},
	)
	r := NewRelation("Respects", s)
	must(t, r.Assert("ObsequiousStudent", "Teacher"))
	must(t, r.Deny("Student", "IncoherentTeacher"))
	must(t, r.Assert("ObsequiousStudent", "IncoherentTeacher"))
	return r
}

// elephantHierarchy builds Figure 4's animal hierarchy: elephants with
// royal, African and Indian subclasses; Clyde a royal elephant; Appu both a
// royal and an Indian elephant.
func elephantHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Animal")
	must(t, h.AddClass("Elephant"))
	must(t, h.AddClass("RoyalElephant", "Elephant"))
	must(t, h.AddClass("AfricanElephant", "Elephant"))
	must(t, h.AddClass("IndianElephant", "Elephant"))
	must(t, h.AddInstance("Clyde", "RoyalElephant"))
	must(t, h.AddInstance("Appu", "RoyalElephant", "IndianElephant"))
	return h
}

// colorHierarchy is a flat domain of colors.
func colorHierarchy(t *testing.T) *hierarchy.Hierarchy {
	t.Helper()
	h := hierarchy.New("Color")
	for _, c := range []string{"Grey", "White", "Dappled"} {
		must(t, h.AddInstance(c))
	}
	return h
}

// colorRelation builds Figure 4's Animal–Color relation: elephants are
// grey; royal elephants are not grey but white; Clyde is not white but
// dappled.
func colorRelation(t *testing.T) *Relation {
	t.Helper()
	s := MustSchema(
		Attribute{Name: "Animal", Domain: elephantHierarchy(t)},
		Attribute{Name: "Color", Domain: colorHierarchy(t)},
	)
	r := NewRelation("AnimalColor", s)
	must(t, r.Assert("Elephant", "Grey"))
	must(t, r.Deny("RoyalElephant", "Grey"))
	must(t, r.Assert("RoyalElephant", "White"))
	must(t, r.Deny("Clyde", "White"))
	must(t, r.Assert("Clyde", "Dappled"))
	return r
}

// randomHierarchy builds a random irredundant DAG hierarchy with n nodes
// beyond the root; roughly a third of the non-root nodes get a second,
// incomparable parent (a comparable second parent would create a redundant
// edge, switching the model off the fast off-path semantics).
func randomHierarchy(rng *rand.Rand, domain string, n int) *hierarchy.Hierarchy {
	h := hierarchy.New(domain)
	names := []string{domain}
	for i := 0; i < n; i++ {
		name := domain + "_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		p1 := names[rng.Intn(len(names))]
		parents := []string{p1}
		if rng.Intn(3) == 0 {
			p2 := names[rng.Intn(len(names))]
			if p2 != p1 && !h.Subsumes(p1, p2) && !h.Subsumes(p2, p1) {
				parents = append(parents, p2)
			}
		}
		if err := h.AddClass(name, parents...); err != nil {
			panic(err)
		}
		names = append(names, name)
	}
	return h
}

// randomConsistentRelation builds a random relation over the given schema
// and inserts random signed tuples, skipping any insertion that would make
// the relation inconsistent. All hierarchies must be irredundant so that
// the off-path pairwise consistency check is exact.
func randomConsistentRelation(rng *rand.Rand, name string, s *Schema, tuples int) *Relation {
	r := NewRelation(name, s)
	var pools [][]string
	for i := 0; i < s.Arity(); i++ {
		pools = append(pools, s.Attr(i).Domain.Nodes())
	}
	for attempts := 0; attempts < tuples*8 && r.Len() < tuples; attempts++ {
		item := make(Item, s.Arity())
		for i := range item {
			item[i] = pools[i][rng.Intn(len(pools[i]))]
		}
		sign := rng.Intn(2) == 0
		if _, present := r.Lookup(item); present {
			continue
		}
		if err := r.Insert(item, sign); err != nil {
			continue
		}
		if len(r.Conflicts()) > 0 {
			r.Retract(item)
		}
	}
	return r
}

// extensionByEnumeration is the gold-standard oracle: evaluate every atomic
// item of the schema directly. Exponential; tests only.
func extensionByEnumeration(t *testing.T, r *Relation) map[string]bool {
	t.Helper()
	s := r.Schema()
	var pools [][]string
	for i := 0; i < s.Arity(); i++ {
		pools = append(pools, s.Attr(i).Domain.AllLeaves())
	}
	out := map[string]bool{}
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == s.Arity() {
			item := prefix.Clone()
			v, err := r.Evaluate(item)
			if err != nil {
				t.Fatalf("oracle: Evaluate(%v): %v", item, err)
			}
			if v.Value {
				out[item.Key()] = true
			}
			return
		}
		for _, n := range pools[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, s.Arity()), 0)
	return out
}
