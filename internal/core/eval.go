package core

import (
	"fmt"
	"sort"
	"time"

	"hrdb/internal/dag"
)

// Preemption selects which of the paper's inheritance semantics Evaluate
// uses to pick the strongest-binding tuples (appendix of the paper).
type Preemption int

const (
	// OffPath is the paper's default: a tuple i binds more strongly than j
	// iff there is a path from j to i in the tuple-binding graph. With an
	// irredundant hierarchy this makes the minimal (most specific)
	// applicable tuples the binders.
	OffPath Preemption = iota
	// OnPath: i binds more strongly than j iff every path from j to the
	// item passes through i. Operationally, redundant edges are retained
	// during node elimination.
	OnPath
	// NoPreemption: the transitive closure of the hierarchy is used, so
	// every applicable tuple is an immediate predecessor and any sign
	// disagreement (absent an exact tuple) is a conflict.
	NoPreemption
)

// String names the preemption mode.
func (p Preemption) String() string {
	switch p {
	case OffPath:
		return "off-path"
	case OnPath:
		return "on-path"
	case NoPreemption:
		return "none"
	default:
		return fmt.Sprintf("Preemption(%d)", int(p))
	}
}

// maxProductNodes bounds the explicit product-graph construction used by
// the general (non-fast-path) evaluator.
const maxProductNodes = 1 << 17

// Verdict is the result of evaluating an item against a relation.
type Verdict struct {
	// Value is the truth value of the item under the closed-world
	// assumption: true iff the relation holds for (every element of) the
	// item.
	Value bool
	// Default is true when no tuple applies and the value was decided by
	// the universal negated tuple (§3.3.1) — under an open world the value
	// would be "unknown" rather than false.
	Default bool
	// Exact is true when a tuple is associated with the item itself.
	Exact bool
	// Binders are the strongest-binding tuples that determined the value.
	Binders []Tuple
	// Applicable is every tuple relevant to the item — the nodes of the
	// item's tuple-binding graph — serving as the justification of the
	// answer (Fig. 9 of the paper).
	Applicable []Tuple
}

// Evaluate computes the truth value of an item under the relation's
// preemption mode. It returns a *ConflictError when the item's strongest-
// binding tuples disagree (the ambiguity constraint, §3.1).
//
// Results are memoized in the relation's verdict cache (see cache.go):
// repeated Evaluate calls on an unchanged relation are a map lookup. Any
// mutation of the relation or of an attribute hierarchy invalidates the
// memo by changing its stamp, never by relying on eviction.
func (r *Relation) Evaluate(item Item) (Verdict, error) {
	return r.evaluate(item, r.mode, !r.cacheOff)
}

// EvaluateMode is Evaluate under an explicit preemption mode, overriding the
// relation's own setting for this call only.
func (r *Relation) EvaluateMode(item Item, mode Preemption) (Verdict, error) {
	return r.evaluate(item, mode, !r.cacheOff)
}

// evaluate is the memoizing front of the evaluator. The cache is probed
// before validation: a hit can only exist for an item that validated under
// the same relation epoch, hierarchy generations, and mode, so skipping
// re-validation is sound.
func (r *Relation) evaluate(item Item, mode Preemption, useCache bool) (Verdict, error) {
	if !useCache {
		return r.evaluateUncached(item, mode)
	}
	key := item.Key()
	stamp := r.stamp(mode)
	if e, ok := r.cache.get(key, stamp); ok {
		if ce, isConflict := e.err.(*ConflictError); isConflict {
			// Conflicts() annotates the error with a resolution in place;
			// hand each caller its own copy so hits never share state.
			cp := *ce
			return e.v, &cp
		}
		return e.v, e.err
	}
	v, err := r.evaluateUncached(item, mode)
	r.cache.put(key, cacheEntry{stamp: stamp, v: v, err: err})
	return v, err
}

// evaluateUncached wraps the real evaluator with the engine metrics: an
// always-on per-mode evaluation counter, per-mode latency sampled 1 in
// (evalSampleMask+1) calls (the counter's post-increment value decides, so
// sampling itself costs nothing extra), and a conflict counter.
func (r *Relation) evaluateUncached(item Item, mode Preemption) (Verdict, error) {
	mi := modeIndex(mode)
	var v Verdict
	var err error
	if metricEvals[mi].Inc()&evalSampleMask == 0 {
		start := time.Now()
		v, err = r.evaluateBare(item, mode)
		metricEvalNS[mi].ObserveDuration(time.Since(start))
	} else {
		v, err = r.evaluateBare(item, mode)
	}
	if _, ok := err.(*ConflictError); ok {
		metricConflicts.Inc()
	}
	return v, err
}

// evaluateBare runs the paper's evaluation procedure with no memo.
func (r *Relation) evaluateBare(item Item, mode Preemption) (Verdict, error) {
	if err := r.validateItem(item); err != nil {
		return Verdict{}, err
	}
	applicable := r.Applicable(item)

	// A tuple on the item itself always binds strongest (§2.1).
	if t, ok := r.Lookup(item); ok {
		return Verdict{Value: t.Sign, Exact: true, Binders: []Tuple{t}, Applicable: applicable}, nil
	}
	if len(applicable) == 0 {
		return Verdict{Value: false, Default: true, Applicable: applicable}, nil
	}

	binders, err := r.bindersFor(item, applicable, mode)
	if err != nil {
		return Verdict{}, err
	}

	value := binders[0].Sign
	for _, b := range binders[1:] {
		if b.Sign != value {
			return Verdict{}, &ConflictError{Relation: r.name, Item: item.Clone(), Binders: binders}
		}
	}
	return Verdict{Value: value, Binders: binders, Applicable: applicable}, nil
}

// bindersFor selects the strongest-binding tuples among the applicable ones
// under the given preemption mode.
func (r *Relation) bindersFor(item Item, applicable []Tuple, mode Preemption) ([]Tuple, error) {
	switch mode {
	case NoPreemption:
		return applicable, nil
	case OffPath:
		if r.fastPathOK() {
			return r.minimalTuples(applicable), nil
		}
		return r.bindersByElimination(item, applicable, false)
	case OnPath:
		return r.bindersByElimination(item, applicable, true)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownMode, int(mode))
	}
}

// Holds is Evaluate reduced to the closed-world truth value.
func (r *Relation) Holds(values ...string) (bool, error) {
	v, err := r.Evaluate(Item(values))
	if err != nil {
		return false, err
	}
	return v.Value, nil
}

// fastPathOK reports whether the minimal-applicable shortcut coincides with
// the paper's tuple-binding-graph construction: every attribute's binding
// graph must be irredundant (a transitive reduction), which is the paper's
// stated precondition for off-path preemption.
func (r *Relation) fastPathOK() bool {
	for _, a := range r.schema.attrs {
		if !a.Domain.BindingIrredundant() {
			return false
		}
	}
	return true
}

// minimalTuples returns the tuples of ts that are minimal under the strict
// binding order (no other tuple in ts lies strictly below them). These are
// the immediate predecessors of the item in its tuple-binding graph when
// the hierarchies are irredundant.
func (r *Relation) minimalTuples(ts []Tuple) []Tuple {
	var out []Tuple
	for i, t := range ts {
		minimal := true
		for j, u := range ts {
			if i == j {
				continue
			}
			if !u.Item.Equal(t.Item) && r.BindSubsumes(t.Item, u.Item) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	return out
}

// bindersByElimination implements the paper's tuple-binding-graph
// construction literally: materialize the relevant slice of the product
// hierarchy (every product node that subsumes the item in the binding
// graphs), then eliminate every node that carries no tuple — preserving
// irredundancy for off-path preemption, or retaining redundant edges for
// on-path preemption — and read off the immediate predecessors of the item.
func (r *Relation) bindersByElimination(item Item, applicable []Tuple, keepRedundant bool) ([]Tuple, error) {
	k := r.schema.Arity()

	// Per-attribute relevant nodes: binding-graph ancestors of the item's
	// coordinate, plus the coordinate itself.
	relevant := make([][]string, k)
	size := 1
	for i := 0; i < k; i++ {
		h := r.schema.attrs[i].Domain
		nodes := []string{item[i]}
		for _, n := range h.Nodes() {
			if n != item[i] && h.BindSubsumes(n, item[i]) {
				nodes = append(nodes, n)
			}
		}
		sort.Strings(nodes)
		relevant[i] = nodes
		size *= len(nodes)
		if size > maxProductNodes {
			return nil, fmt.Errorf("%w: binding graph for %v needs more than %d product nodes",
				ErrTooLarge, item, maxProductNodes)
		}
	}

	// Enumerate product vectors and build the product graph: an edge per
	// single-coordinate binding-graph edge.
	g := dag.New()
	index := map[string]int{}
	var vectors []Item
	var rec func(prefix Item, i int)
	rec = func(prefix Item, i int) {
		if i == k {
			v := prefix.Clone()
			index[v.Key()] = g.AddNode()
			vectors = append(vectors, v)
			return
		}
		for _, n := range relevant[i] {
			rec(append(prefix, n), i+1)
		}
	}
	rec(make(Item, 0, k), 0)

	for _, v := range vectors {
		from := index[v.Key()]
		for i := 0; i < k; i++ {
			h := r.schema.attrs[i].Domain
			for _, c := range h.BindChildren(v[i]) {
				w := v.Clone()
				w[i] = c
				to, ok := index[w.Key()]
				if !ok {
					continue // child outside the relevant slice
				}
				if err := g.AddEdge(from, to); err != nil {
					return nil, err
				}
			}
		}
	}

	// Tuple nodes: vectors carrying an applicable tuple. Applicability is
	// is-a subsumption; a vector reachable only through preference edges is
	// treated as an intermediate (preferences order binding, they do not
	// extend membership).
	tupleAt := map[int]Tuple{}
	for _, t := range applicable {
		if id, ok := index[t.Item.Key()]; ok {
			tupleAt[id] = t
		}
	}
	itemID := index[item.Key()]

	// Eliminate every non-tuple, non-item node in topological order.
	order, err := g.Topo()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		if id == itemID {
			continue
		}
		if _, isTuple := tupleAt[id]; isTuple {
			continue
		}
		if !g.Has(id) {
			continue
		}
		if err := g.Eliminate(id, keepRedundant); err != nil {
			return nil, err
		}
	}

	predIDs := g.Pred(itemID)
	binders := make([]Tuple, 0, len(predIDs))
	for _, p := range predIDs {
		binders = append(binders, tupleAt[p])
	}
	sort.Slice(binders, func(i, j int) bool { return binders[i].Item.Key() < binders[j].Item.Key() })
	if len(binders) == 0 {
		// All applicable tuples were cut off from the item by elimination;
		// cannot happen for off-path (paths are preserved), but guard.
		return nil, fmt.Errorf("core: internal: no binders for %v despite %d applicable tuples",
			item, len(applicable))
	}
	return binders, nil
}

// BindingGraph describes an item's tuple-binding graph for display and
// justification: its nodes are the applicable tuples plus the item, and its
// edges the immediate-predecessor links after node elimination (Fig. 1d).
type BindingGraph struct {
	Item  Item
	Nodes []Tuple
	// Edges are (from, to) indices into Nodes; the item itself is index -1
	// as a destination.
	Edges [][2]int
	// Binders are indices into Nodes of the strongest-binding tuples.
	Binders []int
}

// TupleBindingGraph computes the explicit tuple-binding graph for an item
// under the relation's preemption mode.
func (r *Relation) TupleBindingGraph(item Item) (*BindingGraph, error) {
	if err := r.validateItem(item); err != nil {
		return nil, err
	}
	applicable := r.Applicable(item)
	bg := &BindingGraph{Item: item.Clone(), Nodes: applicable}

	idx := map[string]int{}
	for i, t := range applicable {
		idx[t.Item.Key()] = i
	}

	// Determine binder indices via the same machinery as Evaluate.
	var binders []Tuple
	if t, ok := r.Lookup(item); ok {
		binders = []Tuple{t}
	} else if len(applicable) > 0 {
		var err error
		binders, err = r.bindersFor(item, applicable, r.mode)
		if err != nil {
			return nil, err
		}
	}
	for _, b := range binders {
		bg.Binders = append(bg.Binders, idx[b.Item.Key()])
	}

	// Edges among tuples: the transitive reduction of the binding order on
	// the applicable tuples, plus edges from each binder to the item (-1).
	for i, a := range applicable {
		for j, b := range applicable {
			if i == j || !r.BindSubsumes(a.Item, b.Item) || a.Item.Equal(b.Item) {
				continue
			}
			// immediate: no c strictly between a and b
			immediate := true
			for l, c := range applicable {
				if l == i || l == j {
					continue
				}
				if r.BindSubsumes(a.Item, c.Item) && !a.Item.Equal(c.Item) &&
					r.BindSubsumes(c.Item, b.Item) && !c.Item.Equal(b.Item) {
					immediate = false
					break
				}
			}
			if immediate {
				bg.Edges = append(bg.Edges, [2]int{i, j})
			}
		}
	}
	for _, b := range bg.Binders {
		bg.Edges = append(bg.Edges, [2]int{b, -1})
	}
	return bg, nil
}
