package core

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors of the core package.
var (
	// ErrSchema indicates an invalid schema definition.
	ErrSchema = errors.New("core: invalid schema")
	// ErrArity indicates an item with the wrong number of coordinates.
	ErrArity = errors.New("core: arity mismatch")
	// ErrUnknownValue indicates an item coordinate outside its domain.
	ErrUnknownValue = errors.New("core: unknown value")
	// ErrContradiction indicates inserting an item that is already present
	// with the opposite sign.
	ErrContradiction = errors.New("core: contradictory tuple")
	// ErrTooLarge indicates that an operation would materialize a product
	// graph or extension beyond the configured limit.
	ErrTooLarge = errors.New("core: product too large")
	// ErrIncompatible indicates relations whose schemas do not match for a
	// set operation or join.
	ErrIncompatible = errors.New("core: incompatible schemas")
	// ErrUnknownAttribute indicates a reference to an attribute name absent
	// from the relation's schema. It wraps ErrSchema, so existing
	// errors.Is(err, ErrSchema) checks keep matching.
	ErrUnknownAttribute = fmt.Errorf("%w: unknown attribute", ErrSchema)
	// ErrUnknownMode indicates a Preemption value outside the defined modes.
	ErrUnknownMode = errors.New("core: unknown preemption mode")
)

// ConflictError reports a violation of the paper's ambiguity constraint
// (§3.1): an item whose strongest-binding tuples carry mixed truth values.
type ConflictError struct {
	Relation string
	Item     Item
	// Binders are the conflicting strongest-binding tuples.
	Binders []Tuple
	// Resolution is the minimal conflict resolution set: asserting a tuple
	// on each of these items (with either sign) resolves the conflict.
	// Populated by the consistency checker; may be nil on a bare Evaluate.
	Resolution []Item
}

// Error implements the error interface.
func (e *ConflictError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core: ambiguity conflict in %q at item %v: ", e.Relation, e.Item)
	parts := make([]string, len(e.Binders))
	for i, t := range e.Binders {
		parts[i] = t.String()
	}
	b.WriteString(strings.Join(parts, " vs "))
	if len(e.Resolution) > 0 {
		items := make([]string, len(e.Resolution))
		for i, it := range e.Resolution {
			items[i] = it.String()
		}
		fmt.Fprintf(&b, " (resolve by asserting at: %s)", strings.Join(items, ", "))
	}
	return b.String()
}

// InconsistencyError aggregates the conflicts found by CheckConsistency.
type InconsistencyError struct {
	Relation  string
	Conflicts []*ConflictError
}

// Error implements the error interface.
func (e *InconsistencyError) Error() string {
	if len(e.Conflicts) == 1 {
		return e.Conflicts[0].Error()
	}
	return fmt.Sprintf("core: relation %q has %d ambiguity conflicts (first: %v)",
		e.Relation, len(e.Conflicts), e.Conflicts[0])
}

// Unwrap exposes the first conflict for errors.As chains.
func (e *InconsistencyError) Unwrap() error {
	if len(e.Conflicts) == 0 {
		return nil
	}
	return e.Conflicts[0]
}
