package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// allAtoms enumerates the atomic items of a relation's schema via the
// AtomicItems helper, failing the test on error.
func allAtoms(t *testing.T, r *Relation) []Item {
	t.Helper()
	atoms, err := r.AtomicItems()
	if err != nil {
		t.Fatal(err)
	}
	return atoms
}

// TestEvaluateBatchMatchesSequential: the batch evaluator agrees with
// per-item Evaluate on every atomic item, for every parallelism level.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	for _, build := range []func(*testing.T) *Relation{fliesRelation, colorRelation} {
		r := build(t)
		atoms := allAtoms(t, r)
		want := make([]Verdict, len(atoms))
		for i, it := range atoms {
			v, err := r.Evaluate(it)
			must(t, err)
			want[i] = v
		}
		for _, par := range []int{1, 2, 8} {
			got, err := r.EvaluateBatch(context.Background(), atoms, WithParallelism(par))
			must(t, err)
			for i := range atoms {
				if got[i].Value != want[i].Value || got[i].Default != want[i].Default || got[i].Exact != want[i].Exact {
					t.Errorf("%s p=%d: batch verdict for %v = %+v, want %+v",
						r.Name(), par, atoms[i], got[i], want[i])
				}
			}
		}
	}
}

// TestEvaluateBatchDeterministicError: with several failing items the batch
// always reports the lowest-index failure, at any parallelism.
func TestEvaluateBatchDeterministicError(t *testing.T) {
	r := fliesRelation(t)
	items := []Item{{"Tweety"}, {"Paul"}, {"bogus1"}, {"Peter"}, {"bogus2"}, {"Tweety"}}
	for trial := 0; trial < 20; trial++ {
		_, err := r.EvaluateBatch(context.Background(), items, WithParallelism(8), WithCache(false))
		if !errors.Is(err, ErrUnknownValue) {
			t.Fatalf("trial %d: err = %v, want ErrUnknownValue", trial, err)
		}
		// The lowest-index failure names bogus1, never bogus2.
		if got := err.Error(); !strings.Contains(got, "bogus1") {
			t.Fatalf("trial %d: err %q does not name the lowest-index failure", trial, got)
		}
	}
}

// TestEvaluateBatchCancellation: a cancelled context aborts the batch with
// the context's error.
func TestEvaluateBatchCancellation(t *testing.T) {
	r := fliesRelation(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.EvaluateBatch(ctx, allAtoms(t, r)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := r.EvaluateEach(ctx, allAtoms(t, r)); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateEach err = %v, want context.Canceled", err)
	}
}

// TestEvaluateEachCollectsConflicts: per-item errors are positional data,
// not batch failures.
func TestEvaluateEachCollectsConflicts(t *testing.T) {
	h := elephantHierarchy(t)
	s := MustSchema(Attribute{Name: "Animal", Domain: h})
	r := NewRelation("Likes", s)
	must(t, r.Assert("RoyalElephant"))
	must(t, r.Deny("IndianElephant"))
	// Appu is both royal and Indian: a conflict. Clyde is fine.
	items := []Item{{"Clyde"}, {"Appu"}}
	verdicts, errs, err := r.EvaluateEach(context.Background(), items)
	must(t, err)
	if errs[0] != nil || !verdicts[0].Value {
		t.Fatalf("Clyde: verdict %+v err %v, want true/nil", verdicts[0], errs[0])
	}
	var ce *ConflictError
	if !errors.As(errs[1], &ce) {
		t.Fatalf("Appu: err = %v, want *ConflictError", errs[1])
	}
}

// TestWithPreemptionOverride: the option must match SetMode's semantics
// without mutating the relation, and cached verdicts must not leak across
// modes.
func TestWithPreemptionOverride(t *testing.T) {
	r := colorRelation(t)
	atoms := allAtoms(t, r)
	for _, mode := range []Preemption{OffPath, OnPath} {
		byOption, optErrs, err := r.EvaluateEach(context.Background(), atoms, WithPreemption(mode))
		must(t, err)
		clone := r.Clone()
		clone.SetMode(mode)
		for i, it := range atoms {
			want, wantErr := clone.Evaluate(it)
			if (optErrs[i] == nil) != (wantErr == nil) {
				t.Fatalf("mode %v: %v err = %v, want %v", mode, it, optErrs[i], wantErr)
			}
			if wantErr == nil && byOption[i].Value != want.Value {
				t.Errorf("mode %v: %v = %v, want %v", mode, it, byOption[i].Value, want.Value)
			}
		}
	}
	if r.Mode() != OffPath {
		t.Fatalf("WithPreemption mutated the relation's mode to %v", r.Mode())
	}
}

// TestCacheInvalidation: after any mutation — tuple insert, retract, mode
// switch, or hierarchy growth — Evaluate never returns a stale verdict.
func TestCacheInvalidation(t *testing.T) {
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Flies", s)
	must(t, r.Assert("Bird"))

	v, err := r.Evaluate(Item{"Paul"})
	must(t, err)
	if !v.Value {
		t.Fatal("Paul should fly while only Bird is asserted")
	}
	// Re-evaluate (a cache hit), then mutate and check freshness.
	v, err = r.Evaluate(Item{"Paul"})
	must(t, err)
	if !v.Value {
		t.Fatal("cached verdict flipped without mutation")
	}
	must(t, r.Deny("Penguin"))
	v, err = r.Evaluate(Item{"Paul"})
	must(t, err)
	if v.Value {
		t.Fatal("stale verdict after Deny: Paul must not fly")
	}
	// Retraction restores the old answer (no stale negative either).
	if !r.Retract(Item{"Penguin"}) {
		t.Fatal("retract failed")
	}
	v, err = r.Evaluate(Item{"Paul"})
	must(t, err)
	if !v.Value {
		t.Fatal("stale verdict after Retract")
	}

	// Hierarchy growth invalidates through the generation stamp: a new
	// penguin instance inherits the current tuples, and a later Deny is
	// seen immediately.
	must(t, r.Deny("Penguin"))
	must(t, h.AddInstance("Pablo", "Penguin"))
	v, err = r.Evaluate(Item{"Pablo"})
	must(t, err)
	if v.Value {
		t.Fatal("new instance evaluated stale")
	}

	// SetMode invalidates too: NoPreemption turns the Bird/Penguin overlap
	// into a conflict for penguins.
	r.SetMode(NoPreemption)
	if _, err := r.Evaluate(Item{"Paul"}); err == nil {
		t.Fatal("mode switch served a stale (conflict-free) verdict")
	}
}

// TestCacheStatsAndBounds: hits accumulate, and the cache never holds more
// than its capacity.
func TestCacheStatsAndBounds(t *testing.T) {
	r := fliesRelation(t)
	atoms := allAtoms(t, r)
	for i := 0; i < 3; i++ {
		for _, it := range atoms {
			if _, err := r.Evaluate(it); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses := r.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats hits=%d misses=%d, want both positive", hits, misses)
	}

	c := newVerdictCache(64)
	for i := 0; i < 10_000; i++ {
		c.put(fmt.Sprintf("k%d", i), cacheEntry{})
	}
	if c.size() > 64 {
		t.Fatalf("cache holds %d entries, cap 64", c.size())
	}
}

// TestConflictErrorNotShared: cache hits must hand each caller its own
// ConflictError, since Conflicts() annotates Resolution in place.
func TestConflictErrorNotShared(t *testing.T) {
	h := elephantHierarchy(t)
	s := MustSchema(Attribute{Name: "Animal", Domain: h})
	r := NewRelation("Likes", s)
	must(t, r.Assert("RoyalElephant"))
	must(t, r.Deny("IndianElephant"))

	_, err1 := r.Evaluate(Item{"Appu"})
	_, err2 := r.Evaluate(Item{"Appu"}) // cache hit
	var ce1, ce2 *ConflictError
	if !errors.As(err1, &ce1) || !errors.As(err2, &ce2) {
		t.Fatalf("want conflicts, got %v / %v", err1, err2)
	}
	if ce1 == ce2 {
		t.Fatal("cache hit returned the same *ConflictError instance")
	}
	ce1.Resolution = []Item{{"Appu"}}
	if len(ce2.Resolution) != 0 {
		t.Fatal("mutating one conflict's Resolution leaked into the other")
	}
}

// TestCachePropertyEquivalence: across randomized mutate/query
// interleavings, a cached relation and an uncached twin receiving the same
// operations always agree — verdicts and errors alike.
func TestCachePropertyEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := randomHierarchy(rng, "D", 20)
		s := MustSchema(Attribute{Name: "X", Domain: h})
		cached := NewRelation("R", s)
		plain := NewRelation("R", s)
		plain.SetCache(false)
		nodes := h.Nodes()
		pick := func() Item { return Item{nodes[rng.Intn(len(nodes))]} }

		for step := 0; step < 400; step++ {
			switch rng.Intn(6) {
			case 0: // insert
				it, sign := pick(), rng.Intn(2) == 0
				e1 := cached.Insert(it, sign)
				e2 := plain.Insert(it, sign)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("seed %d step %d: insert divergence %v vs %v", seed, step, e1, e2)
				}
			case 1: // retract
				it := pick()
				if cached.Retract(it) != plain.Retract(it) {
					t.Fatalf("seed %d step %d: retract divergence", seed, step)
				}
			case 2: // mode flip
				mode := []Preemption{OffPath, OnPath, NoPreemption}[rng.Intn(3)]
				cached.SetMode(mode)
				plain.SetMode(mode)
			default: // query
				it := pick()
				v1, e1 := cached.Evaluate(it)
				v2, e2 := plain.Evaluate(it)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("seed %d step %d: Evaluate(%v) err divergence: %v vs %v",
						seed, step, it, e1, e2)
				}
				if e1 != nil {
					if e1.Error() != e2.Error() {
						t.Fatalf("seed %d step %d: error text divergence: %v vs %v",
							seed, step, e1, e2)
					}
					continue
				}
				if v1.Value != v2.Value || v1.Default != v2.Default || v1.Exact != v2.Exact {
					t.Fatalf("seed %d step %d: Evaluate(%v) = %+v cached vs %+v plain",
						seed, step, it, v1, v2)
				}
			}
		}
		if hits, _ := cached.CacheStats(); hits == 0 {
			t.Fatalf("seed %d: property run never hit the cache", seed)
		}
	}
}

// TestExtensionByEvaluationMatchesExplicate: the parallel evaluation path
// and the paper's explication rewrite compute the same extension.
func TestExtensionByEvaluationMatchesExplicate(t *testing.T) {
	for _, build := range []func(*testing.T) *Relation{fliesRelation, colorRelation, respectsRelation} {
		r := build(t)
		byExplicate, err := r.Extension()
		must(t, err)
		byEval, err := r.ExtensionByEvaluation(context.Background())
		must(t, err)
		if len(byExplicate) != len(byEval) {
			t.Fatalf("%s: explicate %d items, evaluation %d", r.Name(), len(byExplicate), len(byEval))
		}
		for i := range byExplicate {
			if !byExplicate[i].Equal(byEval[i]) {
				t.Fatalf("%s: item %d: %v vs %v", r.Name(), i, byExplicate[i], byEval[i])
			}
		}
	}
}

// TestParallelEvaluateStress hammers one relation with concurrent cached
// evaluations; run under -race this proves the read path (including the
// verdict cache and the lazily built hierarchy memos) is thread-safe.
func TestParallelEvaluateStress(t *testing.T) {
	r := colorRelation(t)
	atoms := allAtoms(t, r)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				it := atoms[rng.Intn(len(atoms))]
				if _, err := r.Evaluate(it); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCacheSizeCountsDistinctKeys: a key promoted from the previous
// generation is resident in both maps; size must count it once.
func TestCacheSizeCountsDistinctKeys(t *testing.T) {
	c := newVerdictCache(8) // generation threshold: 4
	var stamp cacheStamp
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), cacheEntry{stamp: stamp})
	}
	c.put("k4", cacheEntry{stamp: stamp}) // rotates: prev={k0..k3}, cur={k4}
	if _, ok := c.get("k0", stamp); !ok {
		t.Fatal("k0 lost by rotation")
	}
	// k0 now lives in cur (promoted) and prev; 5 distinct keys resident.
	if got := c.size(); got != 5 {
		t.Fatalf("size = %d, want 5 (k0 must not be double-counted)", got)
	}
}

// TestEvaluateBatchEmptyItems: the zero-item paths follow the same contract
// as n > 0 — a cancelled context yields (nil, err); otherwise a non-nil
// empty slice and no error, never both.
func TestEvaluateBatchEmptyItems(t *testing.T) {
	r := fliesRelation(t)

	vs, err := r.EvaluateBatch(context.Background(), nil)
	must(t, err)
	if vs == nil || len(vs) != 0 {
		t.Fatalf("EvaluateBatch(nil items) = %v, want empty non-nil slice", vs)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	vs, err = r.EvaluateBatch(cancelled, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if vs != nil {
		t.Fatalf("cancelled empty batch returned verdicts %v alongside error", vs)
	}

	evs, errs, err := r.EvaluateEach(context.Background(), nil)
	must(t, err)
	if evs == nil || errs == nil {
		t.Fatal("EvaluateEach(nil items) must return non-nil slices")
	}
	evs, errs, err = r.EvaluateEach(cancelled, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evs != nil || errs != nil {
		t.Fatal("cancelled empty EvaluateEach returned slices alongside error")
	}
}
