package core

import (
	"context"
	"fmt"
	"testing"

	"hrdb/internal/obs"
)

// Engine metrics are process-wide, so these tests assert on deltas, never
// absolutes — other tests in the package move the same counters.

func TestCacheMetricsFlush(t *testing.T) {
	r := fliesRelation(t)
	h0 := metricCacheHits.Value()
	m0 := metricCacheMisses.Value()

	// 1 miss + well over 2×cacheFlushBlock hits, so at least one amortized
	// flush fires mid-run regardless of the counters' starting phase.
	const hits = 3 * cacheFlushBlock
	for i := 0; i <= hits; i++ {
		if _, err := r.Holds("Tweety"); err != nil {
			t.Fatal(err)
		}
	}
	if d := metricCacheHits.Value() - h0; d < cacheFlushBlock {
		t.Errorf("global hit counter moved by %d, want ≥ %d", d, cacheFlushBlock)
	}

	// CacheStats flushes the remainder exactly.
	cHits, cMisses := r.CacheStats()
	if d := metricCacheHits.Value() - h0; d < cHits {
		t.Errorf("after CacheStats: global hits delta %d < relation hits %d", d, cHits)
	}
	if d := metricCacheMisses.Value() - m0; d < cMisses || cMisses == 0 {
		t.Errorf("after CacheStats: global misses delta %d, relation misses %d", d, cMisses)
	}
}

func TestCacheEvictionMetric(t *testing.T) {
	r := fliesRelation(t)
	r.cache = newVerdictCache(8) // rotation every 4 inserts
	e0 := metricCacheEvictions.Value()
	// Distinct uncached items: force inserts until generations rotate twice.
	for _, who := range []string{"Tweety", "Paul", "Patricia", "Pamela", "Peter", "Bird", "Penguin", "Canary", "GalapagosPenguin", "AmazingFlyingPenguin"} {
		r.Holds(who)
	}
	if metricCacheEvictions.Value() == e0 {
		t.Error("eviction counter did not move despite generation rotations")
	}
}

func TestConflictMetric(t *testing.T) {
	h := animalHierarchy(t)
	s := MustSchema(Attribute{Name: "Creature", Domain: h})
	r := NewRelation("Conflicted", s)
	must(t, r.Assert("GalapagosPenguin"))
	must(t, r.Deny("AmazingFlyingPenguin"))
	c0 := metricConflicts.Value()
	if _, err := r.Evaluate(Item{"Patricia"}); err == nil {
		t.Fatal("expected a conflict for Patricia")
	}
	if metricConflicts.Value() != c0+1 {
		t.Errorf("conflict counter delta = %d, want 1", metricConflicts.Value()-c0)
	}
	// A cache hit replays the conflict without re-counting it.
	if _, err := r.Evaluate(Item{"Patricia"}); err == nil {
		t.Fatal("expected the cached conflict")
	}
	if metricConflicts.Value() != c0+1 {
		t.Errorf("cached conflict re-counted: delta = %d", metricConflicts.Value()-c0)
	}
}

func TestEvalCounterPerMode(t *testing.T) {
	r := fliesRelation(t)
	r.SetCache(false)
	e0 := metricEvals[modeIndex(OnPath)].Value()
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := r.EvaluateMode(Item{"Paul"}, OnPath); err != nil {
			t.Fatal(err)
		}
	}
	if d := metricEvals[modeIndex(OnPath)].Value() - e0; d != n {
		t.Errorf("on-path eval counter delta = %d, want %d", d, n)
	}
}

func TestBatchMetricsAndTracer(t *testing.T) {
	r := fliesRelation(t)
	items := []Item{{"Tweety"}, {"Paul"}, {"Peter"}}
	b0 := metricBatches.Value()
	s0 := metricBatchSize.Snapshot()

	var tr obs.SpanCollector
	if _, err := r.EvaluateBatch(context.Background(), items, WithTracer(&tr)); err != nil {
		t.Fatal(err)
	}
	if metricBatches.Value() != b0+1 {
		t.Errorf("batch counter delta = %d, want 1", metricBatches.Value()-b0)
	}
	s1 := metricBatchSize.Snapshot()
	if s1.Count != s0.Count+1 || s1.Sum != s0.Sum+uint64(len(items)) {
		t.Errorf("batch-size histogram: count %d→%d sum %d→%d", s0.Count, s1.Count, s0.Sum, s1.Sum)
	}

	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "core.EvaluateBatch" {
		t.Fatalf("spans = %+v, want one core.EvaluateBatch", spans)
	}
	sp := spans[0]
	if sp.Err != nil || sp.Duration <= 0 {
		t.Errorf("span err=%v duration=%v", sp.Err, sp.Duration)
	}
	attrs := map[string]string{}
	for _, a := range sp.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["items"] != fmt.Sprint(len(items)) || attrs["mode"] != "off-path" {
		t.Errorf("span attrs = %v", attrs)
	}
}

func TestEvalLatencySampled(t *testing.T) {
	r := fliesRelation(t)
	r.SetCache(false)
	h0 := metricEvalNS[modeIndex(OffPath)].Snapshot()
	// 4×(mask+1) uncached evaluations guarantee ≥4 samples whatever the
	// counter's starting phase.
	const n = 4 * (evalSampleMask + 1)
	for i := 0; i < n; i++ {
		if _, err := r.Evaluate(Item{"Tweety"}); err != nil {
			t.Fatal(err)
		}
	}
	h1 := metricEvalNS[modeIndex(OffPath)].Snapshot()
	if d := h1.Count - h0.Count; d < 4 || d > n {
		t.Errorf("sampled latency observations delta = %d, want within [4, %d]", d, n)
	}
}
