package hrdb_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"hrdb"
)

// TestReplicationEndToEnd drives the replication subsystem through the
// public facade exactly as hrserved wires it: a durable primary serving
// clients on one listener and WAL shipping on another, an in-memory
// replica serving lag-bounded reads, a router splitting traffic, and a
// manual PROMOTE failover.
func TestReplicationEndToEnd(t *testing.T) {
	store, err := hrdb.OpenStore(t.TempDir())
	must(t, err)

	// Primary: client listener plus a dedicated replication listener.
	primarySrv := hrdb.NewServer(store, hrdb.ServerOptions{CloseTarget: true})
	must(t, primarySrv.Start("127.0.0.1:0"))
	primary := hrdb.NewPrimary(store, hrdb.PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
	replSrv := hrdb.NewServer(store, hrdb.ServerOptions{Repl: primary})
	must(t, replSrv.Start("127.0.0.1:0"))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		replSrv.Shutdown(ctx)
		primarySrv.Shutdown(ctx)
	}()

	// Replica follows the replication listener and serves its own port.
	replica := hrdb.NewReplica(replSrv.Addr(), hrdb.ReplicaOptions{
		ReconnectBackoff: 10 * time.Millisecond,
	})
	defer replica.Close()
	replicaSrv := hrdb.NewServer(hrdb.ReplicaTarget{R: replica}, hrdb.ServerOptions{
		LagProbe: func() hrdb.LagInfo {
			staleness, epoch, offset, state := replica.Lag()
			return hrdb.LagInfo{Staleness: staleness, Epoch: epoch, Offset: offset, State: state}
		},
		Promote: replica.Promote,
	})
	must(t, replicaSrv.Start("127.0.0.1:0"))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		replicaSrv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Writes land on the primary through the router; reads route to the
	// replica once it is fresh.
	router, err := hrdb.DialRouter(primarySrv.Addr(), []string{replicaSrv.Addr()},
		hrdb.WithMaxStaleness(5*time.Second),
		hrdb.WithLagProbeInterval(0))
	must(t, err)
	defer router.Close()

	_, err = router.Exec(ctx, `
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
INSTANCE Tweety UNDER Bird;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
`)
	must(t, err)

	// Wait until the replica converges, then verify byte-identical state.
	deadline := time.Now().Add(10 * time.Second)
	for hrdb.Fingerprint(replica.Database()) != hrdb.Fingerprint(store.Database()) {
		if time.Now().After(deadline) {
			t.Fatal("replica never converged with the primary")
		}
		time.Sleep(5 * time.Millisecond)
	}

	out, err := router.Exec(ctx, "HOLDS Flies (Tweety);")
	must(t, err)
	if !strings.Contains(out, "true") {
		t.Fatalf("routed read = %q", out)
	}

	// Failover: kill the primary, promote the replica, keep writing.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	replSrv.Shutdown(shutCtx)
	primarySrv.Shutdown(shutCtx)
	shutCancel()

	cli, err := hrdb.Dial(replicaSrv.Addr())
	must(t, err)
	defer cli.Close()
	must(t, cli.Promote(ctx))
	_, err = cli.Exec(ctx, "INSTANCE Robin UNDER Bird; ASSERT Flies (Robin);")
	must(t, err)
	out, err = cli.Exec(ctx, "HOLDS Flies (Robin);")
	must(t, err)
	if !strings.Contains(out, "true") {
		t.Fatalf("post-failover read = %q", out)
	}
}
