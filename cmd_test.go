package hrdb_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runGo runs a package main via `go run` and returns its combined output.
func runGo(t *testing.T, args ...string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCmdHrfiguresSmoke: every figure renders and contains its paper facts.
func TestCmdHrfiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runGo(t, "./cmd/hrfigures")
	for _, want := range []string{
		"Figure 1", "flies(Patricia) = true", "flies(Paul) = false",
		"Figure 3", "inconsistent, as the paper says",
		"Figure 4", "color(Appu, White) = true",
		"Figure 6", "After consolidation",
		"Figure 10", "Jack and Jill",
		"Figure 11", "no loss of information: true",
		"off-path", "on-path", "CONFLICT",
		"PREFER AFP OVER GP: flies(Patricia) = true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hrfigures output missing %q", want)
		}
	}
}

// TestCmdHrbenchSmoke: one cheap experiment produces its table.
func TestCmdHrbenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := runGo(t, "./cmd/hrbench", "E1")
	for _, want := range []string{"E1", "compression", "1073×"} {
		if !strings.Contains(out, want) {
			t.Errorf("hrbench output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdHrshellExec: the -e one-shot mode drives a full session.
func TestCmdHrshellExec(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	script := `CREATE HIERARCHY D; CLASS C UNDER D; INSTANCE x UNDER C;
CREATE RELATION R (X: D); ASSERT R (C); HOLDS R (x); COUNT R;`
	out := runGo(t, "./cmd/hrshell", "-e", script)
	if !strings.Contains(out, "true") || !strings.Contains(out, "count = 1") {
		t.Fatalf("hrshell output:\n%s", out)
	}
}

// TestExamplesRun: every example main exits 0 and prints its headline fact.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		pkg  string
		want string
	}{
		{"./examples/quickstart", "Does Paul fly? false"},
		{"./examples/university", "Does John respect Fagin? true"},
		{"./examples/zoo", "no loss of information: true"},
		{"./examples/knowledgebase", "left precedence resolves zephyr.battery = poor"},
		{"./examples/reasoner", "travelsFar(Tweety) = true"},
		{"./examples/partialinfo", "some swan flies?  true"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.pkg, func(t *testing.T) {
			t.Parallel()
			out := runGo(t, c.pkg)
			if !strings.Contains(out, c.want) {
				t.Errorf("%s output missing %q:\n%s", c.pkg, c.want, out)
			}
		})
	}
}
