# hrdb — hierarchical relational model (Jagadish, SIGMOD '89)

GO ?= go

.PHONY: all build test race cover bench figures experiments fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/hrfigures

experiments:
	$(GO) run ./cmd/hrbench

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/hql/
	$(GO) test -fuzz=FuzzOpenLog -fuzztime=30s ./internal/storage/
	$(GO) test -fuzz=FuzzReadSnapshot -fuzztime=30s ./internal/storage/

clean:
	rm -f cover.out test_output.txt bench_output.txt
