# hrdb — hierarchical relational model (Jagadish, SIGMOD '89)

GO ?= go
FUZZTIME ?= 30s

.PHONY: all help build test test-crash test-server test-compat test-obs test-repl test-failover test-shard test-view race cover bench bench-smoke bench-json benchgate figures experiments fuzz fuzz-smoke clean

all: build test

help:
	@echo "hrdb targets:"
	@echo "  build        compile and vet all packages"
	@echo "  test         run the unit tests (plus vet and a race pass"
	@echo "               over the storage, core, server, and obs packages)"
	@echo "  test-crash   crash the WAL at every byte offset and verify"
	@echo "               recovery of the exact committed prefix"
	@echo "  test-server  race-mode pass over the network service layer"
	@echo "               (overload shedding, drain, chaos proxy, v2 mux)"
	@echo "  test-compat  cross-version wire-protocol matrix: v2 server with"
	@echo "               v1 clients, v1-only server with auto/v2 clients"
	@echo "  test-obs     race-mode pass over the observability layer"
	@echo "               (metrics registry, histograms, slow-query log)"
	@echo "  test-repl    race-mode pass over the replication subsystem"
	@echo "               (WAL shipping, chaos severs, failover/promote)"
	@echo "  test-failover race-mode pass over the self-healing failover"
	@echo "               path (elections, fencing, deposed rejoin, router"
	@echo "               re-discovery); CHAOS_ROUNDS=<n> soaks the chaos"
	@echo "               loops beyond their default round counts"
	@echo "  test-shard   race-mode pass over the sharding subsystem"
	@echo "               (placement, scatter-gather, 2PC chaos, coordinator"
	@echo "               failover through a shard's replica set);"
	@echo "               CHAOS_ROUNDS=<n> soaks the 2PC chaos loop"
	@echo "  test-view    race-mode pass over materialized views and change"
	@echo "               feeds (differential view-vs-recompute property test,"
	@echo "               SUBSCRIBE resume + chaos severs, subwire framing)"
	@echo "  race         run the tests under the race detector"
	@echo "               (includes the concurrency stress suites)"
	@echo "  cover        coverage summary for internal/..."
	@echo "  bench        full benchmark sweep (figures + experiments;"
	@echo "               tests are skipped via -run '^$$')"
	@echo "  bench-smoke  quick pass over the batch-evaluation and"
	@echo "               verdict-cache benchmarks only"
	@echo "  bench-json   machine-readable BENCH_<exp>.json for the planner,"
	@echo "               protocol, sharding, and view experiments (E9, E12-E15)"
	@echo "  benchgate    regression gate: fresh bench-json numbers vs the"
	@echo "               checked-in scripts/bench_baseline/ (~3x tolerance)"
	@echo "  figures      regenerate the paper figures (cmd/hrfigures)"
	@echo "  experiments  print the E1-E15 experiment tables (cmd/hrbench)"
	@echo "  fuzz         run the fuzz targets for FUZZTIME ($(FUZZTIME)) each"
	@echo "  fuzz-smoke   run the fuzz targets for 15s each (CI)"

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/storage/ ./internal/core/ ./internal/server/ ./internal/obs/ ./internal/repl/ ./internal/dag/ ./internal/hierarchy/ ./internal/algebra/ ./internal/view/ ./internal/subwire/

test-crash:
	$(GO) test -run 'TestCrash' -count=1 -v ./internal/storage/

test-server:
	$(GO) test -race -count=1 ./internal/server/

test-compat:
	$(GO) test -race -count=1 -run 'TestCrossVersionMatrix|TestTenantNamespaceIsolation|TestUnknownTenantFailsDial' ./internal/server/

test-obs:
	$(GO) test -race -count=1 ./internal/obs/

test-repl:
	$(GO) test -race -count=1 ./internal/repl/

test-failover:
	$(GO) test -race -count=1 -run 'TestAutoFailover|TestFencedPrimary|TestDeposedPrimary|TestBootstrapDuring|TestReplicaStateGauge|TestRouterFailsOver|TestRouterStale|TestRouterConcurrent|TestShutdownRefuses' ./internal/repl/ ./internal/server/

test-shard:
	$(GO) test -race -count=1 ./internal/shard/
	$(GO) test -race -count=1 -run 'TestShard|TestDialCluster' .

test-view:
	$(GO) test -race -count=1 ./internal/view/ ./internal/subwire/
	$(GO) test -race -count=1 -run 'TestSubscribe' ./internal/server/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

# -run '^$' keeps the crash/chaos test suites out of benchmark runs: they
# dominate wall clock and add nothing to the measurements.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluateBatch|BenchmarkHoldsCached' -benchtime=50x .

bench-json:
	$(GO) run ./cmd/hrbench -json . E9 E12 E13 E14 E15

benchgate:
	./scripts/benchgate.sh

figures:
	$(GO) run ./cmd/hrfigures

experiments:
	$(GO) run ./cmd/hrbench

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/hql/
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) ./internal/server/
	$(GO) test -fuzz=FuzzOpenLog -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzCrashOffset -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzReadSnapshot -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzStreamDecoder -fuzztime=$(FUZZTIME) ./internal/storage/
	$(GO) test -fuzz=FuzzSubscribeFrameDecode -fuzztime=$(FUZZTIME) ./internal/subwire/

fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=15s

clean:
	rm -f cover.out test_output.txt bench_output.txt
