# hrdb — hierarchical relational model (Jagadish, SIGMOD '89)

GO ?= go

.PHONY: all help build test test-crash test-server race cover bench bench-smoke figures experiments fuzz clean

all: build test

help:
	@echo "hrdb targets:"
	@echo "  build        compile and vet all packages"
	@echo "  test         run the unit tests (plus vet and a race pass"
	@echo "               over the storage and core packages)"
	@echo "  test-crash   crash the WAL at every byte offset and verify"
	@echo "               recovery of the exact committed prefix"
	@echo "  test-server  race-mode pass over the network service layer"
	@echo "               (overload shedding, drain, chaos proxy)"
	@echo "  race         run the tests under the race detector"
	@echo "               (includes the concurrency stress suites)"
	@echo "  cover        coverage summary for internal/..."
	@echo "  bench        full benchmark sweep (figures + experiments)"
	@echo "  bench-smoke  quick pass over the batch-evaluation and"
	@echo "               verdict-cache benchmarks only"
	@echo "  figures      regenerate the paper figures (cmd/hrfigures)"
	@echo "  experiments  print the E1-E10 experiment tables (cmd/hrbench)"
	@echo "  fuzz         run the fuzz targets for 30s each"

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/storage/ ./internal/core/ ./internal/server/

test-crash:
	$(GO) test -run 'TestCrash' -count=1 -v ./internal/storage/

test-server:
	$(GO) test -race -count=1 ./internal/server/

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluateBatch|BenchmarkHoldsCached' -benchtime=50x .

figures:
	$(GO) run ./cmd/hrfigures

experiments:
	$(GO) run ./cmd/hrbench

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/hql/
	$(GO) test -fuzz=FuzzOpenLog -fuzztime=30s ./internal/storage/
	$(GO) test -fuzz=FuzzCrashOffset -fuzztime=30s ./internal/storage/
	$(GO) test -fuzz=FuzzReadSnapshot -fuzztime=30s ./internal/storage/

clean:
	rm -f cover.out test_output.txt bench_output.txt
