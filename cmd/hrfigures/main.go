// Command hrfigures regenerates every figure of Jagadish, "Incorporating
// Hierarchy in a Relational Model of Data" (SIGMOD 1989), from the library:
//
//	hrfigures            # all figures
//	hrfigures fig1 fig6  # selected figures
//
// Each figure prints the constructed tables/graphs and the derived answers
// the paper's text walks through, so the output can be checked against the
// paper side by side.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"hrdb"
)

func main() {
	figs := map[string]func(){
		"fig1":     fig1,
		"fig2":     fig2,
		"fig3":     fig3,
		"fig4":     fig4,
		"fig5":     fig5,
		"fig6":     fig6,
		"fig7":     fig7,
		"fig8":     fig8,
		"fig9":     fig9,
		"fig10":    fig10,
		"fig11":    fig11,
		"appendix": appendix,
	}
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
			"fig7", "fig8", "fig9", "fig10", "fig11", "appendix"}
	}
	for _, a := range args {
		f, ok := figs[strings.ToLower(a)]
		if !ok {
			var known []string
			for k := range figs {
				known = append(known, k)
			}
			sort.Strings(known)
			log.Fatalf("unknown figure %q (known: %s)", a, strings.Join(known, ", "))
		}
		f()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

// animalHierarchy builds Figure 1a.
func animalHierarchy() *hrdb.Hierarchy {
	h := hrdb.NewHierarchy("Animal")
	check(h.AddClass("Bird"))
	check(h.AddClass("Canary", "Bird"))
	check(h.AddInstance("Tweety", "Canary"))
	check(h.AddClass("Penguin", "Bird"))
	check(h.AddClass("GalapagosPenguin", "Penguin"))
	check(h.AddClass("AmazingFlyingPenguin", "Penguin"))
	check(h.AddInstance("Paul", "GalapagosPenguin"))
	check(h.AddInstance("Patricia", "GalapagosPenguin", "AmazingFlyingPenguin"))
	check(h.AddInstance("Pamela", "AmazingFlyingPenguin"))
	check(h.AddInstance("Peter", "AmazingFlyingPenguin"))
	return h
}

// fliesRelation builds Figure 1b.
func fliesRelation(h *hrdb.Hierarchy) *hrdb.Relation {
	r := hrdb.NewRelation("Flies", hrdb.MustSchema(hrdb.Attribute{Name: "Creature", Domain: h}))
	check(r.Assert("Bird"))
	check(r.Deny("Penguin"))
	check(r.Assert("AmazingFlyingPenguin"))
	check(r.Assert("Peter"))
	return r
}

func fig1() {
	header("Figure 1: class hierarchy, hierarchical relation, subsumption and tuple-binding graphs")
	h := animalHierarchy()
	fmt.Println("(a) Class hierarchy (DOT):")
	fmt.Println(h.DOT())
	r := fliesRelation(h)
	fmt.Println("(b) The Flies relation:")
	fmt.Println(r.Table())

	fmt.Println("(c) Subsumption graph (⊤̄ is the universal negated tuple):")
	for _, e := range r.SubsumptionGraph() {
		from := "⊤̄"
		if e.From != nil {
			from = e.From.String()
		}
		fmt.Printf("  %s → %s\n", from, e.To)
	}

	fmt.Println("\n(d) Tuple-binding graph for Patricia:")
	bg, err := r.TupleBindingGraph(hrdb.Item{"Patricia"})
	check(err)
	for _, e := range bg.Edges {
		to := "Patricia"
		if e[1] >= 0 {
			to = bg.Nodes[e[1]].String()
		}
		fmt.Printf("  %s → %s\n", bg.Nodes[e[0]], to)
	}

	fmt.Println("\nDerived answers:")
	for _, who := range []string{"Tweety", "Paul", "Pamela", "Patricia", "Peter"} {
		ok, err := r.Holds(who)
		check(err)
		fmt.Printf("  flies(%s) = %v\n", who, ok)
	}
}

// studentHierarchy and teacherHierarchy build Figure 2a/2b.
func studentHierarchy() *hrdb.Hierarchy {
	h := hrdb.NewHierarchy("Student")
	check(h.AddClass("ObsequiousStudent"))
	check(h.AddInstance("John", "ObsequiousStudent"))
	check(h.AddInstance("Esther", "ObsequiousStudent"))
	return h
}

func teacherHierarchy() *hrdb.Hierarchy {
	h := hrdb.NewHierarchy("Teacher")
	check(h.AddClass("IncoherentTeacher"))
	check(h.AddInstance("Fagin", "IncoherentTeacher"))
	return h
}

func fig2() {
	header("Figure 2: student and teacher hierarchies and their product")
	s, te := studentHierarchy(), teacherHierarchy()
	fmt.Println("(a) Student hierarchy:")
	fmt.Println(s.DOT())
	fmt.Println("(b) Teacher hierarchy:")
	fmt.Println(te.DOT())
	fmt.Println("(c) Product graph nodes (item hierarchy, never materialized in the engine):")
	var nodes []string
	for _, sn := range s.Nodes() {
		for _, tn := range te.Nodes() {
			nodes = append(nodes, fmt.Sprintf("(%s, %s)", sn, tn))
		}
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		fmt.Println("  " + n)
	}
}

// respects builds Figure 3 over shared hierarchies.
func respects(s, te *hrdb.Hierarchy, resolved bool) *hrdb.Relation {
	r := hrdb.NewRelation("Respects", hrdb.MustSchema(
		hrdb.Attribute{Name: "Student", Domain: s},
		hrdb.Attribute{Name: "Teacher", Domain: te},
	))
	check(r.Assert("ObsequiousStudent", "Teacher"))
	check(r.Deny("Student", "IncoherentTeacher"))
	if resolved {
		check(r.Assert("ObsequiousStudent", "IncoherentTeacher"))
	}
	return r
}

func fig3() {
	header("Figure 3: the Respects relation and its conflict")
	s, te := studentHierarchy(), teacherHierarchy()
	r := respects(s, te, false)
	fmt.Println("Above the dashed line only:")
	fmt.Println(r.Table())
	if err := r.CheckConsistency(); err != nil {
		fmt.Printf("inconsistent, as the paper says:\n  %v\n", err)
	}
	r2 := respects(s, te, true)
	fmt.Println("\nWith the resolving tuple below the dashed line:")
	fmt.Println(r2.Table())
	fmt.Printf("consistent: %v\n", r2.CheckConsistency() == nil)
}

// elephants builds Figure 4's hierarchy and relation.
func elephants() (*hrdb.Hierarchy, *hrdb.Relation) {
	h := hrdb.NewHierarchy("Animal")
	check(h.AddClass("Elephant"))
	check(h.AddClass("RoyalElephant", "Elephant"))
	check(h.AddClass("AfricanElephant", "Elephant"))
	check(h.AddClass("IndianElephant", "Elephant"))
	check(h.AddInstance("Clyde", "RoyalElephant"))
	check(h.AddInstance("Appu", "RoyalElephant", "IndianElephant"))
	colors := hrdb.NewHierarchy("Color")
	for _, c := range []string{"Grey", "White", "Dappled"} {
		check(colors.AddInstance(c))
	}
	r := hrdb.NewRelation("AnimalColor", hrdb.MustSchema(
		hrdb.Attribute{Name: "Animal", Domain: h},
		hrdb.Attribute{Name: "Color", Domain: colors},
	))
	check(r.Assert("Elephant", "Grey"))
	check(r.Deny("RoyalElephant", "Grey"))
	check(r.Assert("RoyalElephant", "White"))
	check(r.Deny("Clyde", "White"))
	check(r.Assert("Clyde", "Dappled"))
	return h, r
}

func fig4() {
	header("Figure 4: the elephant hierarchy with explicit cancellation")
	_, r := elephants()
	fmt.Println(r.Table())
	fmt.Println("The Appu query (royal binds over elephant; Indian is irrelevant):")
	for _, q := range [][2]string{{"Appu", "White"}, {"Appu", "Grey"}} {
		ok, err := r.Holds(q[0], q[1])
		check(err)
		fmt.Printf("  color(%s, %s) = %v\n", q[0], q[1], ok)
	}
}

func fig5() {
	header("Figure 5: a union of two sets subsuming a third — C's tuple is not redundant")
	h := hrdb.NewHierarchy("D")
	check(h.AddClass("A"))
	check(h.AddClass("B"))
	check(h.AddClass("C"))
	check(h.AddInstance("c1", "A", "C"))
	check(h.AddInstance("c2", "B", "C"))
	r := hrdb.NewRelation("R", hrdb.MustSchema(hrdb.Attribute{Name: "X", Domain: h}))
	check(r.Assert("A"))
	check(r.Assert("B"))
	check(r.Assert("C"))
	fmt.Println(r.Table())
	c := r.Consolidate()
	fmt.Printf("after consolidation %d tuples remain (C kept: neither A nor B alone dominates it):\n\n%s",
		c.Len(), c.Table())
}

func fig6() {
	header("Figure 6: subsumption graph of Respects and its consolidation")
	s, te := studentHierarchy(), teacherHierarchy()
	r := respects(s, te, true)
	fmt.Println("(a) Subsumption graph:")
	for _, e := range r.SubsumptionGraph() {
		from := "⊤̄"
		if e.From != nil {
			from = e.From.String()
		}
		fmt.Printf("  %s → %s\n", from, e.To)
	}
	c := r.Consolidate()
	fmt.Println("\n(b) After consolidation (same extension, fewer tuples):")
	fmt.Println(c.Table())
}

func fig7() {
	header("Figure 7: who do obsequious students respect?")
	s, te := studentHierarchy(), teacherHierarchy()
	r := respects(s, te, true)
	sel, err := hrdb.Select("σ(Student ⊑ ObsequiousStudent)", r,
		hrdb.Condition{Attr: "Student", Class: "ObsequiousStudent"})
	check(err)
	fmt.Println(sel.Consolidate().Table())
}

func fig8() {
	header("Figure 8: who does John respect?")
	s, te := studentHierarchy(), teacherHierarchy()
	r := respects(s, te, true)
	sel, err := hrdb.Select("σ(Student = John)", r,
		hrdb.Condition{Attr: "Student", Class: "John"})
	check(err)
	fmt.Println(sel.Consolidate().Table())
}

func fig9() {
	header("Figure 9: a selection on Animal–Color and its justification")
	_, r := elephants()
	v, err := r.Evaluate(hrdb.Item{"Clyde", "Grey"})
	check(err)
	fmt.Printf("(a) σ(Animal=Clyde, Color=Grey): %v\n", v.Value)
	fmt.Println("(b) Justification — applicable tuples:")
	for _, t := range v.Applicable {
		fmt.Printf("  %s\n", t)
	}
	fmt.Println("strongest binding:")
	for _, t := range v.Binders {
		fmt.Printf("  %s\n", t)
	}
}

func fig10() {
	header("Figure 10: set operations on Jack's and Jill's Loves relations")
	h := animalHierarchy()
	schema := hrdb.MustSchema(hrdb.Attribute{Name: "Creature", Domain: h})
	jack := hrdb.NewRelation("JackLoves", schema)
	check(jack.Assert("Bird"))
	check(jack.Deny("Penguin"))
	check(jack.Assert("Peter"))
	jill := hrdb.NewRelation("JillLoves", schema)
	check(jill.Assert("Bird"))
	fmt.Println("(a)", "")
	fmt.Println(jack.Table())
	fmt.Println("(b)")
	fmt.Println(jill.Table())

	u, err := hrdb.Union("Jack and Jill between them love", jack, jill)
	check(err)
	fmt.Println("(c)")
	fmt.Println(u.Table())
	i, err := hrdb.Intersect("Jack and Jill both love", jack, jill)
	check(err)
	fmt.Println("(d)")
	fmt.Println(i.Consolidate().Table())
	d1, err := hrdb.Difference("Jack loves but Jill does not", jack, jill)
	check(err)
	fmt.Println("(e)")
	fmt.Println(d1.Consolidate().Table())
	d2, err := hrdb.Difference("Jill loves but Jack does not", jill, jack)
	check(err)
	fmt.Println("(f)")
	fmt.Println(d2.Consolidate().Table())
}

func fig11() {
	header("Figure 11: enclosure sizes, join with colors, projection back")
	h, color := elephants()
	sizes := hrdb.NewHierarchy("EnclosureSize")
	for _, s := range []string{"3000", "2000"} {
		check(sizes.AddInstance(s))
	}
	size := hrdb.NewRelation("Enclosure", hrdb.MustSchema(
		hrdb.Attribute{Name: "Animal", Domain: h},
		hrdb.Attribute{Name: "EnclosureSize", Domain: sizes},
	))
	check(size.Assert("Elephant", "3000"))
	check(size.Deny("IndianElephant", "3000"))
	check(size.Assert("IndianElephant", "2000"))
	fmt.Println("(a)")
	fmt.Println(size.Table())

	j, err := hrdb.Join("Enclosure ⋈ AnimalColor", size, color)
	check(err)
	fmt.Println("(b)")
	fmt.Println(j.Consolidate().Table())

	back, err := hrdb.Project("π(Animal, Color)", j, "Animal", "Color")
	check(err)
	fmt.Println("(c)")
	fmt.Println(back.Consolidate().Table())
	extBack, err := back.Extension()
	check(err)
	extOrig, err := color.Extension()
	check(err)
	fmt.Printf("no loss of information: %v\n", fmt.Sprint(extBack) == fmt.Sprint(extOrig))
}

func appendix() {
	header("Appendix: preemption semantics (off-path, on-path, none, preferences)")
	h := animalHierarchy()
	r := fliesRelation(h)

	for _, mode := range []hrdb.Preemption{hrdb.OffPath, hrdb.OnPath, hrdb.NoPreemption} {
		r.SetMode(mode)
		fmt.Printf("%s:\n", mode)
		for _, who := range []string{"Pamela", "Patricia", "Peter", "Paul"} {
			v, err := r.Evaluate(hrdb.Item{who})
			if err != nil {
				fmt.Printf("  flies(%s): CONFLICT (%v)\n", who, err)
				continue
			}
			fmt.Printf("  flies(%s) = %v\n", who, v.Value)
		}
	}

	r.SetMode(hrdb.OffPath)
	fmt.Println("\nRedundant link (Pamela is also directly a Penguin):")
	check(h.AddEdge("Penguin", "Pamela"))
	if _, err := r.Evaluate(hrdb.Item{"Pamela"}); err != nil {
		fmt.Printf("  flies(Pamela): CONFLICT, as the appendix predicts (%v)\n", err)
	}

	fmt.Println("\nPreference edges (AFP preferred over GP after denying GP):")
	h2 := animalHierarchy()
	r2 := fliesRelation(h2)
	check(r2.Deny("GalapagosPenguin"))
	if _, err := r2.Evaluate(hrdb.Item{"Patricia"}); err != nil {
		fmt.Printf("  before: conflict at Patricia (%v)\n", err)
	}
	check(h2.Prefer("AmazingFlyingPenguin", "GalapagosPenguin"))
	ok, err := r2.Holds("Patricia")
	check(err)
	fmt.Printf("  after PREFER AFP OVER GP: flies(Patricia) = %v\n", ok)
}
