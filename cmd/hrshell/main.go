// Command hrshell is an interactive HQL shell over a hierarchical
// relational database.
//
//	hrshell                 # in-memory database
//	hrshell -data ./mydb    # durable database (snapshot + WAL) in ./mydb
//	hrshell -connect host:port    # remote database served by hrserved
//	hrshell -e 'SHOW RELATIONS;'  # run statements and exit
//	hrshell -f script.hql   # run a script file and exit
//
// Type statements ending in ';'. Multi-line input is supported: the shell
// keeps reading until a semicolon. Type \q to quit, \help for a summary.
//
// Ctrl-C cancels the statement in flight (the session aborts at the next
// statement boundary; a remote server also stops it at its deadline
// checks); a second Ctrl-C — or one at an idle prompt — exits the shell,
// closing the store cleanly.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"

	"hrdb"
	"hrdb/internal/hql"
)

// storeTarget asserts at compile time that a durable store satisfies the
// HQL target interface.
var _ hql.Target = (*hrdb.Store)(nil)

const helpText = `HQL statements (end with ';'):
  CREATE HIERARCHY <domain>
  CLASS <name> UNDER <parent>[, <parent>…]   |   CLASS <name> IN <domain>
  INSTANCE <name> UNDER <parent>[, …]        |   INSTANCE <name> IN <domain>
  EDGE <domain>: <parent> -> <child>
  PREFER <stronger> OVER <weaker> IN <domain>
  CREATE RELATION <name> (<attr>: <domain>, …)
  DROP RELATION <name>
  ASSERT <rel> (<v>, …)      DENY <rel> (<v>, …)      RETRACT <rel> (<v>, …)
  HOLDS <rel> (<v>, …)       WHY <rel> (<v>, …)
  SELECT FROM <rel> [WHERE <attr> UNDER <class> [AND …]] [AS <name>]
  EXTENSION <rel>            CONSOLIDATE <rel>
  EXPLICATE <rel> [ON (<attr>, …)]
  UNION <a> <b> AS <c>       INTERSECT <a> <b> AS <c>
  DIFFERENCE <a> <b> AS <c>  JOIN <a> <b> AS <c>
  PROJECT <rel> ON (<attr>, …) AS <name>
  COUNT <rel> [BY (<attr>, …)]
  RULE <head>(<args>) [IF [NOT] <atom> [AND [NOT] <atom>]…]  -- ?X = variable
  INFER <pred>(<args>)                            -- isa(?X, Class) builtin
  SHOW HIERARCHIES | RELATIONS | RULES | HIERARCHY <d> | RELATION <r>
  DUMP                                            -- replayable HQL script
  DROP NODE <name> IN <domain>                    -- refuses referenced nodes
  SET POLICY allow|warn|forbid
  SET MODE <rel> off_path|on_path|none            -- appendix semantics
  BEGIN; …; COMMIT;          ROLLBACK;
Shell commands: \q quit, \help this text, \stats process metrics
  (\stats on a -connect shell asks the server via the STATS verb).
Ctrl-C cancels the running statement; twice (or at the prompt) exits.`

func main() {
	dataDir := flag.String("data", "", "durable database directory (empty = in-memory)")
	connect := flag.String("connect", "", "connect to an hrserved instance at host:port instead of opening a database")
	tenant := flag.String("tenant", "", "server-side namespace to run in (with -connect)")
	execStr := flag.String("e", "", "execute statements and exit")
	file := flag.String("f", "", "execute a script file and exit")
	flag.Parse()

	// cleanup runs exactly once on every exit path (normal return, error
	// exit, Ctrl-C) so the store's WAL is closed cleanly.
	var closers []func()
	cleanup := sync.OnceFunc(func() {
		for _, c := range closers {
			c()
		}
	})
	defer cleanup()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "hrshell:", err)
		cleanup()
		os.Exit(1)
	}

	// exec abstracts over the three backends: durable store, in-memory
	// database, remote server. stats answers \stats: the remote backend
	// asks the server (STATS verb), local backends render this process's
	// own metrics.
	var exec func(ctx context.Context, input string) (string, error)
	stats := func(context.Context) (string, error) { return hrdb.MetricsText(), nil }
	switch {
	case *connect != "" && *dataDir != "":
		fail(fmt.Errorf("-connect and -data are mutually exclusive"))
	case *connect != "":
		var opts []hrdb.Option
		if *tenant != "" {
			opts = append(opts, hrdb.WithTenant(*tenant))
		}
		client, err := hrdb.Dial(*connect, opts...)
		if err != nil {
			fail(err)
		}
		closers = append(closers, func() { client.Close() })
		exec = client.Exec
		stats = client.Stats
		if ns := client.Tenant(); ns != "" && ns != hrdb.DefaultTenant {
			fmt.Fprintf(os.Stderr, "connected to %s (tenant %s)\n", *connect, ns)
		} else {
			fmt.Fprintf(os.Stderr, "connected to %s\n", *connect)
		}
	case *tenant != "":
		fail(fmt.Errorf("-tenant requires -connect"))
	case *dataDir != "":
		store, err := hrdb.OpenStore(*dataDir)
		if err != nil {
			fail(err)
		}
		closers = append(closers, func() { store.Close() })
		exec = hrdb.NewStoreSession(store).ExecContext
		fmt.Fprintf(os.Stderr, "opened durable database at %s\n", *dataDir)
	default:
		exec = hrdb.NewSession(hrdb.NewDatabase()).ExecContext
	}

	// Signal protocol: while a statement runs, inflight holds its cancel
	// func; the first Ctrl-C fires it, the second (or one at an idle
	// prompt) exits after closing the store.
	var inflight atomic.Pointer[context.CancelFunc]
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		for range sigc {
			if cancel := inflight.Swap(nil); cancel != nil {
				fmt.Fprintln(os.Stderr, "\ninterrupt: canceling statement (Ctrl-C again to quit)")
				(*cancel)()
				continue
			}
			fmt.Fprintln(os.Stderr, "\ninterrupt: exiting")
			cleanup()
			os.Exit(130)
		}
	}()

	run := func(input string) bool {
		ctx, cancel := context.WithCancel(context.Background())
		inflight.Store(&cancel)
		out, err := exec(ctx, input)
		inflight.Store(nil)
		cancel()
		if out != "" {
			fmt.Print(out)
			if !strings.HasSuffix(out, "\n") {
				fmt.Println()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		return true
	}

	switch {
	case *execStr != "":
		if !run(*execStr) {
			cleanup()
			os.Exit(1)
		}
		return
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fail(err)
		}
		if !run(string(data)) {
			cleanup()
			os.Exit(1)
		}
		return
	}

	fmt.Println("hrdb shell — hierarchical relational model (Jagadish, SIGMOD '89)")
	fmt.Println(`type \help for help, \q to quit`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("hrdb> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, `\quit`, `exit`, `quit`:
			return
		case `\help`, `\h`:
			fmt.Println(helpText)
			prompt()
			continue
		case `\stats`:
			out, err := stats(context.Background())
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			} else {
				fmt.Print(out)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			run(buf.String())
			buf.Reset()
		}
		prompt()
	}
}
