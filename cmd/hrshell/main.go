// Command hrshell is an interactive HQL shell over a hierarchical
// relational database.
//
//	hrshell                 # in-memory database
//	hrshell -data ./mydb    # durable database (snapshot + WAL) in ./mydb
//	hrshell -e 'SHOW RELATIONS;'  # run statements and exit
//	hrshell -f script.hql   # run a script file and exit
//
// Type statements ending in ';'. Multi-line input is supported: the shell
// keeps reading until a semicolon. Type \q to quit, \help for a summary.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"hrdb"
	"hrdb/internal/hql"
)

// storeTarget asserts at compile time that a durable store satisfies the
// HQL target interface.
var _ hql.Target = (*hrdb.Store)(nil)

const helpText = `HQL statements (end with ';'):
  CREATE HIERARCHY <domain>
  CLASS <name> UNDER <parent>[, <parent>…]   |   CLASS <name> IN <domain>
  INSTANCE <name> UNDER <parent>[, …]        |   INSTANCE <name> IN <domain>
  EDGE <domain>: <parent> -> <child>
  PREFER <stronger> OVER <weaker> IN <domain>
  CREATE RELATION <name> (<attr>: <domain>, …)
  DROP RELATION <name>
  ASSERT <rel> (<v>, …)      DENY <rel> (<v>, …)      RETRACT <rel> (<v>, …)
  HOLDS <rel> (<v>, …)       WHY <rel> (<v>, …)
  SELECT FROM <rel> [WHERE <attr> UNDER <class> [AND …]] [AS <name>]
  EXTENSION <rel>            CONSOLIDATE <rel>
  EXPLICATE <rel> [ON (<attr>, …)]
  UNION <a> <b> AS <c>       INTERSECT <a> <b> AS <c>
  DIFFERENCE <a> <b> AS <c>  JOIN <a> <b> AS <c>
  PROJECT <rel> ON (<attr>, …) AS <name>
  COUNT <rel> [BY (<attr>, …)]
  RULE <head>(<args>) [IF [NOT] <atom> [AND [NOT] <atom>]…]  -- ?X = variable
  INFER <pred>(<args>)                            -- isa(?X, Class) builtin
  SHOW HIERARCHIES | RELATIONS | RULES | HIERARCHY <d> | RELATION <r>
  DUMP                                            -- replayable HQL script
  DROP NODE <name> IN <domain>                    -- refuses referenced nodes
  SET POLICY allow|warn|forbid
  SET MODE <rel> off_path|on_path|none            -- appendix semantics
  BEGIN; …; COMMIT;          ROLLBACK;
Shell commands: \q quit, \help this text.`

func main() {
	dataDir := flag.String("data", "", "durable database directory (empty = in-memory)")
	execStr := flag.String("e", "", "execute statements and exit")
	file := flag.String("f", "", "execute a script file and exit")
	flag.Parse()

	var sess *hrdb.Session
	if *dataDir != "" {
		store, err := hrdb.OpenStore(*dataDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrshell:", err)
			os.Exit(1)
		}
		defer store.Close()
		sess = hrdb.NewStoreSession(store)
		fmt.Fprintf(os.Stderr, "opened durable database at %s\n", *dataDir)
	} else {
		sess = hrdb.NewSession(hrdb.NewDatabase())
	}

	run := func(input string) bool {
		out, err := sess.Exec(input)
		if out != "" {
			fmt.Print(out)
			if !strings.HasSuffix(out, "\n") {
				fmt.Println()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		return true
	}

	switch {
	case *execStr != "":
		if !run(*execStr) {
			os.Exit(1)
		}
		return
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hrshell:", err)
			os.Exit(1)
		}
		if !run(string(data)) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("hrdb shell — hierarchical relational model (Jagadish, SIGMOD '89)")
	fmt.Println(`type \help for help, \q to quit`)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("hrdb> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, `\quit`, `exit`, `quit`:
			return
		case `\help`, `\h`:
			fmt.Println(helpText)
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if strings.Contains(line, ";") {
			run(buf.String())
			buf.Reset()
		}
		prompt()
	}
}
