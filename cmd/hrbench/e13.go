package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	"hrdb/internal/algebra"
	"hrdb/internal/core"
	"hrdb/internal/hierarchy"
	"hrdb/internal/workload"
)

// e13Row is one relation size's scan-vs-index measurement.
type e13Row struct {
	Tuples        int     `json:"tuples"`
	HierNodes     int     `json:"hier_nodes"`
	Access        string  `json:"access"`
	SelectScanNs  float64 `json:"select_scan_p50_ns"`
	SelectIndexNs float64 `json:"select_index_p50_ns"`
	SelectSpeedup float64 `json:"select_speedup"`
	JoinScanNs    float64 `json:"join_scan_p50_ns"`
	JoinIndexNs   float64 `json:"join_index_p50_ns"`
	JoinSpeedup   float64 `json:"join_speedup"`
}

// e13Subsumes is the warm-label microbenchmark attached to the E13 report.
type e13Subsumes struct {
	HierNodes  int     `json:"hier_nodes"`
	WalkNs     float64 `json:"bfs_walk_ns"`
	WarmNs     float64 `json:"warm_label_ns"`
	Speedup    float64 `json:"speedup"`
	WarmAllocs float64 `json:"warm_allocs_per_op"`
}

// p50It runs f k times (after one warm-up) and returns the median ns.
func p50It(k int, f func()) float64 {
	f()
	lat := make([]time.Duration, k)
	for i := range lat {
		t0 := time.Now()
		f()
		lat[i] = time.Since(t0)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(lat[len(lat)/2].Nanoseconds())
}

// e13Fixture builds an all-positive relation of n tuples over a taxonomy of
// classes×fanout instances (consistent by construction: no negated tuple
// ever contradicts an inherited value, so no O(n²) consistency sweep is
// needed at benchmark scale).
func e13Fixture(seed int64, classes, fanout, n int) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	h0, err := workload.Taxonomy("D0", classes, fanout)
	check(err)
	h1, err := workload.Taxonomy("D1", 16, 8)
	check(err)
	s, err := core.NewSchema(
		core.Attribute{Name: "A", Domain: h0},
		core.Attribute{Name: "B", Domain: h1},
	)
	check(err)
	r := core.NewRelation("R", s)
	p0, p1 := h0.Nodes(), h1.Nodes()
	for attempts := 0; attempts < n*8 && r.Len() < n; attempts++ {
		item := core.Item{p0[rng.Intn(len(p0))], p1[rng.Intn(len(p1))]}
		if _, present := r.Lookup(item); present {
			continue
		}
		check(r.Insert(item, true))
	}
	return r
}

// e13OuterProbe builds a small relation over the big fixture's first
// domain, for the join crossover. It samples instances only — the typical
// probe shape (joining ground facts against a big class-level relation),
// and the selective case where enumeration cost, not candidate signing,
// separates the two access paths.
func e13OuterProbe(seed int64, h *hierarchy.Hierarchy, n int) *core.Relation {
	rng := rand.New(rand.NewSource(seed))
	s, err := core.NewSchema(core.Attribute{Name: "A", Domain: h})
	check(err)
	r := core.NewRelation("Probe", s)
	var instances []string
	for _, node := range h.Nodes() {
		if strings.Contains(node, "_i") {
			instances = append(instances, node)
		}
	}
	for attempts := 0; attempts < n*8 && r.Len() < n; attempts++ {
		item := core.Item{instances[rng.Intn(len(instances))]}
		if _, present := r.Lookup(item); present {
			continue
		}
		check(r.Insert(item, true))
	}
	return r
}

// e13Planner: the cost-based planner's scan-vs-index crossover. Small
// relations stay on the full scan (probe bookkeeping would cost more than
// it saves); past the threshold the secondary-index probe pulls ahead and
// the gap widens with size, because the scan enumerates (and computes
// meets against) every stored tuple while the probe touches one
// representative per distinct stored value plus the actual matches.
func e13Planner() {
	header("E13 — cost-based planner: scan vs secondary-index probe")
	ctx := context.Background()
	cond := algebra.Condition{Attr: "A", Class: "c0003_i00002"}
	fmt.Printf("SELECT WHERE A UNDER a single instance; JOIN with a 16-tuple instance-level probe relation on A.\n\n")
	fmt.Println("| tuples | access | select scan p50 | select index p50 | speedup | join scan p50 | join index p50 | speedup |")
	fmt.Println("|---|---|---|---|---|---|---|---|")

	var rows []e13Row
	for _, n := range []int{100, 1000, 3000, 10000} {
		// The hierarchy is fixed (64 classes × 24 instances); growing the
		// relation grows tuples-per-value density, as real fact bases do.
		r := e13Fixture(13, 64, 24, n)
		s := r.Schema()
		s.Attr(0).Domain.Warm()
		s.Attr(1).Domain.Warm()
		outer := e13OuterProbe(17, s.Attr(0).Domain, 16)

		plan, err := algebra.PlanSelect(r, cond)
		check(err)
		k := 5
		if n >= 3000 {
			k = 3
		}
		selScan := p50It(k, func() {
			if _, err := algebra.SelectContext(algebra.WithForceScan(ctx), "σ", r, cond); err != nil {
				log.Fatal(err)
			}
		})
		selIdx := p50It(k, func() {
			if _, err := algebra.SelectContext(ctx, "σ", r, cond); err != nil {
				log.Fatal(err)
			}
		})
		joinScan := p50It(k, func() {
			if _, err := algebra.JoinContext(algebra.WithForceScan(ctx), "j", outer, r); err != nil {
				log.Fatal(err)
			}
		})
		joinIdx := p50It(k, func() {
			if _, err := algebra.JoinContext(ctx, "j", outer, r); err != nil {
				log.Fatal(err)
			}
		})
		row := e13Row{
			Tuples: r.Len(), HierNodes: s.Attr(0).Domain.Len(), Access: string(plan.Access),
			SelectScanNs: selScan, SelectIndexNs: selIdx, SelectSpeedup: selScan / selIdx,
			JoinScanNs: joinScan, JoinIndexNs: joinIdx, JoinSpeedup: joinScan / joinIdx,
		}
		rows = append(rows, row)
		fmt.Printf("| %d | %s | %s | %s | %.1f× | %s | %s | %.1f× |\n",
			row.Tuples, row.Access, fmtNs(selScan), fmtNs(selIdx), row.SelectSpeedup,
			fmtNs(joinScan), fmtNs(joinIdx), row.JoinSpeedup)
	}

	// Warm-label subsumption: an interval compare against the reference BFS
	// walk the labels replace.
	h, err := workload.Taxonomy("S", 100, 100)
	check(err)
	h.Warm()
	from, to := "class0042", "c0042_i00037"
	walk := func(a, b string) bool {
		if a == b {
			return true
		}
		frontier := []string{a}
		seen := map[string]bool{a: true}
		for len(frontier) > 0 {
			n := frontier[0]
			frontier = frontier[1:]
			for _, c := range h.Children(n) {
				if c == b {
					return true
				}
				if !seen[c] {
					seen[c] = true
					frontier = append(frontier, c)
				}
			}
		}
		return false
	}
	if !walk(from, to) || !h.Subsumes(from, to) {
		log.Fatal("E13: subsumption fixture broken")
	}
	walkNs := timeIt(func() { walk(from, to) })
	warmNs := timeIt(func() { h.Subsumes(from, to) })
	sub := e13Subsumes{
		HierNodes: h.Len(), WalkNs: walkNs, WarmNs: warmNs,
		Speedup: walkNs / warmNs,
	}
	fmt.Printf("\nwarm Subsumes over %d nodes: %s vs %s BFS walk (%.0f×, 0 allocs/op — pinned by TestSubsumesWarmNoAllocs)\n",
		sub.HierNodes, fmtNs(warmNs), fmtNs(walkNs), sub.Speedup)

	emitJSON("E13", struct {
		Crossover []e13Row    `json:"crossover"`
		Subsumes  e13Subsumes `json:"subsumes"`
	}{rows, sub})
}
