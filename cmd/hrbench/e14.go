package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hrdb"
)

// e14Row is one cluster size's scatter-gather throughput measurement.
type e14Row struct {
	Shards         int     `json:"shards"`
	TuplesPerShard int     `json:"tuples_per_shard"`
	Workers        int     `json:"workers"`
	Queries        int     `json:"queries"`
	QPS            float64 `json:"qps"`
	Speedup        float64 `json:"speedup"`
}

// e14Servers boots `shards` in-memory shard servers and returns their
// addresses plus a shutdown func.
func e14Servers(shards int) (addrs []string, shutdown func()) {
	srvs := make([]*hrdb.Server, 0, shards)
	for i := 0; i < shards; i++ {
		target := hrdb.NewMemTarget(hrdb.NewDatabase())
		srv := hrdb.NewServer(target, hrdb.ServerOptions{
			Shard: hrdb.NewShardNode(target, i, shards),
		})
		check(srv.Start("127.0.0.1:0"))
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
	}
	return addrs, func() {
		for _, s := range srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			check(s.Shutdown(ctx))
			cancel()
		}
	}
}

// e14Seed loads the fixture through a coordinator: a 10-class taxonomy with
// instances/10 members each, every member asserted individually so the
// tuples are all-instance — hash-partitioned across the shards rather than
// replicated. DDL broadcasts; the asserts route to each tuple's home shard.
func e14Seed(ctx context.Context, addrs []string, classes, instances int) {
	c, err := hrdb.DialCluster(ctx, addrs)
	check(err)
	defer c.Close()

	var b strings.Builder
	b.WriteString("CREATE HIERARCHY D;\n")
	for k := 0; k < classes; k++ {
		fmt.Fprintf(&b, "CLASS C%d UNDER D;\n", k)
	}
	for i := 0; i < instances; i++ {
		fmt.Fprintf(&b, "INSTANCE i%05d UNDER C%d;\n", i, i%classes)
	}
	b.WriteString("CREATE RELATION R (X: D);\n")
	if _, err := c.Exec(ctx, b.String()); err != nil {
		log.Fatal(err)
	}
	var a strings.Builder
	for i := 0; i < instances; i++ {
		fmt.Fprintf(&a, "ASSERT R (i%05d);\n", i)
		if (i+1)%200 == 0 || i == instances-1 {
			if _, err := c.Exec(ctx, a.String()); err != nil {
				log.Fatal(err)
			}
			a.Reset()
		}
	}
}

// e14Measure runs `workers` coordinators (each with its own connection to
// every shard) issuing scatter-gather SELECTs for `dur`, rotating the class
// condition so the verdict cache cannot trivialize the scan, and returns the
// completed query count and the measured wall clock.
func e14Measure(ctx context.Context, addrs []string, classes, workers int, dur time.Duration) (int, time.Duration) {
	conns := make([]*hrdb.Cluster, workers)
	for w := range conns {
		c, err := hrdb.DialCluster(ctx, addrs)
		check(err)
		conns[w] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	query := func(k int) string {
		return fmt.Sprintf("SELECT FROM R WHERE X UNDER C%d;", k%classes)
	}
	for _, c := range conns { // warm every connection once
		if _, err := c.Exec(ctx, query(0)); err != nil {
			log.Fatal(err)
		}
	}

	var total int64
	start := time.Now()
	deadline := start.Add(dur)
	var wg sync.WaitGroup
	for w, c := range conns {
		wg.Add(1)
		go func(w int, c *hrdb.Cluster) {
			defer wg.Done()
			for n := w; time.Now().Before(deadline); n++ {
				if _, err := c.Exec(ctx, query(n)); err != nil {
					log.Fatal(err)
				}
				atomic.AddInt64(&total, 1)
			}
		}(w, c)
	}
	wg.Wait()
	return int(atomic.LoadInt64(&total)), time.Since(start)
}

// e14Sharding: horizontal scaling of scatter-gather reads. A fixed fact base
// is hash-partitioned across 1 vs 3 shards; concurrent coordinators issue
// class-condition SELECTs, so each shard scans only its partition and the
// per-query scan work divides by the shard count. The speedup column is
// qps(n)/qps(1).
//
// Caveat: the scaling headroom is bounded by the host's core count — the
// shards here are in-process servers, so on a single-CPU box all three
// partitions time-share one core and the speedup collapses toward 1×
// (coordinator-side merge and consolidation are serial either way). The
// partition arithmetic (tuples_per_shard) is what the experiment pins on
// constrained hardware; the throughput ratio is meaningful on >=4 cores.
func e14Sharding() {
	header("E14 — sharding: scatter-gather SELECT throughput, 1 vs 3 shards")
	fmt.Printf("GOMAXPROCS = %d (speedup is core-bound; see EXPERIMENTS.md §E14)\n\n", runtime.GOMAXPROCS(0))
	fmt.Println("| shards | tuples/shard | workers | queries | qps | speedup |")
	fmt.Println("|---|---|---|---|---|---|")

	const (
		classes   = 10
		instances = 1200
		workers   = 4
		dur       = 400 * time.Millisecond
	)
	ctx := context.Background()
	var rows []e14Row
	var baseQPS float64
	for _, shards := range []int{1, 3} {
		addrs, shutdown := e14Servers(shards)
		e14Seed(ctx, addrs, classes, instances)
		queries, elapsed := e14Measure(ctx, addrs, classes, workers, dur)
		shutdown()
		qps := float64(queries) / elapsed.Seconds()
		if shards == 1 {
			baseQPS = qps
		}
		row := e14Row{
			Shards: shards, TuplesPerShard: instances / shards,
			Workers: workers, Queries: queries, QPS: qps, Speedup: qps / baseQPS,
		}
		rows = append(rows, row)
		fmt.Printf("| %d | %d | %d | %d | %.0f | %.2f× |\n",
			row.Shards, row.TuplesPerShard, row.Workers, row.Queries, row.QPS, row.Speedup)
	}
	emitJSON("E14", struct {
		GOMAXPROCS int      `json:"gomaxprocs"`
		Rows       []e14Row `json:"rows"`
	}{runtime.GOMAXPROCS(0), rows})
}
