// Command hrbench runs the performance experiments E1–E15 of EXPERIMENTS.md
// and prints their tables. The paper (a model paper) reports no absolute
// numbers; these experiments quantify the claims its prose makes — storage
// compression from class tuples (§1), the join degradation of the flat
// alternative (footnote 1), and the costs of the new operators (§3.3).
//
//	hrbench               # all experiments
//	hrbench E1 E2         # selected experiments
//	hrbench -json . E13   # also write BENCH_E13.json for CI artifacts
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"hrdb"
	"hrdb/internal/algebra"
	"hrdb/internal/catalog"
	"hrdb/internal/core"
	"hrdb/internal/mining"
	"hrdb/internal/storage"
	"hrdb/internal/workload"
)

func main() {
	exps := map[string]func(){
		"E1":  e1Storage,
		"E2":  e2Joins,
		"E3":  e3Consolidate,
		"E4":  e4Explicate,
		"E5":  e5Algebra,
		"E6":  e6Consistency,
		"E7":  e7Mining,
		"E8":  e8Durability,
		"E9":  e9Parallel,
		"E10": e10GroupCommit,
		"E11": e11Replication,
		"E12": e12Multiplexing,
		"E13": e13Planner,
		"E14": e14Sharding,
		"E15": e15Views,
	}
	flag.StringVar(&jsonDir, "json", "", "directory to also write machine-readable BENCH_<exp>.json files to")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15"}
	}
	for _, a := range args {
		f, ok := exps[strings.ToUpper(a)]
		if !ok {
			var known []string
			for k := range exps {
				known = append(known, k)
			}
			sort.Strings(known)
			log.Fatalf("unknown experiment %q (known: %s)", a, strings.Join(known, ", "))
		}
		f()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println("## " + title)
	fmt.Println()
}

// timeIt runs f repeatedly for at least 20ms and returns ns/op.
func timeIt(f func()) float64 {
	// warm up
	f()
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed > 20*time.Millisecond || n > 1<<20 {
			return float64(elapsed.Nanoseconds()) / float64(n)
		}
		n *= 2
	}
}

// fmtNs renders nanoseconds human-readably.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// e1Storage: one class tuple vs fanout flat rows (§1's storage claim).
func e1Storage() {
	header("E1 — storage: class tuples vs flat rows (paper §1)")
	fmt.Println("| classes | fanout | flat rows | flat bytes | hier tuples | hier bytes | compression |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, p := range []struct{ classes, fanout int }{
		{10, 10}, {10, 100}, {10, 1000}, {100, 100},
	} {
		h, err := workload.Taxonomy("D", p.classes, p.fanout)
		check(err)
		r, err := workload.ClassRelation("R", h, p.classes)
		check(err)
		flatRel, err := r.Explicate()
		check(err)
		flatRel = flatRel.Consolidate()
		hb := workload.ApproxTupleBytes(r)
		fb := workload.ApproxTupleBytes(flatRel)
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %.0f× |\n",
			p.classes, p.fanout, flatRel.Len(), fb, r.Len(), hb, float64(fb)/float64(hb))
	}
}

// e2Joins: hierarchical evaluation vs the footnote-1 membership-join
// baseline, sweeping hierarchy depth.
func e2Joins() {
	header("E2 — query: inheritance evaluation vs repeated membership joins (footnote 1)")
	fmt.Println("| depth | hier eval | baseline (joins) | joins/query | slowdown |")
	fmt.Println("|---|---|---|---|---|")
	for _, depth := range []int{2, 4, 8, 16} {
		h, err := workload.Chain("D", depth, 8)
		check(err)
		r, err := workload.ExceptionChain("R", h, depth)
		check(err)
		mb := workload.MembershipBaseline(h, r)
		depthOf := workload.DepthFunc(h)

		item := core.Item{"leafInstance"}
		hierNs := timeIt(func() {
			if _, err := r.Evaluate(item); err != nil {
				log.Fatal(err)
			}
		})
		var joins int
		baseNs := timeIt(func() {
			_, joins = mb.Holds([]string{"X"}, []string{"leafInstance"}, depthOf)
		})
		fmt.Printf("| %d | %s | %s | %d | %.1f× |\n",
			depth, fmtNs(hierNs), fmtNs(baseNs), joins, baseNs/hierNs)
	}
}

// e3Consolidate: consolidation cost and reduction (§3.3.1).
func e3Consolidate() {
	header("E3 — consolidate: cost and tuple reduction (paper §3.3.1)")
	fmt.Println("| classes | redundant/class | tuples before | tuples after | time |")
	fmt.Println("|---|---|---|---|---|")
	for _, p := range []struct{ classes, redundant int }{
		{10, 10}, {20, 20}, {40, 40},
	} {
		h, err := workload.Taxonomy("D", p.classes, p.redundant+1)
		check(err)
		r, err := workload.RedundantRelation("R", h, p.classes, p.redundant)
		check(err)
		var after int
		ns := timeIt(func() {
			after = r.Consolidate().Len()
		})
		fmt.Printf("| %d | %d | %d | %d | %s |\n", p.classes, p.redundant, r.Len(), after, fmtNs(ns))
	}
}

// e4Explicate: explication cost scales with the extension (§3.3.2).
func e4Explicate() {
	header("E4 — explicate: cost vs extension size (paper §3.3.2)")
	fmt.Println("| classes | fanout | stored tuples | extension | time |")
	fmt.Println("|---|---|---|---|---|")
	for _, p := range []struct{ classes, fanout int }{
		{10, 10}, {10, 100}, {10, 1000}, {100, 100},
	} {
		h, err := workload.Taxonomy("D", p.classes, p.fanout)
		check(err)
		r, err := workload.ClassRelation("R", h, p.classes)
		check(err)
		var ext int
		ns := timeIt(func() {
			flatRel, err := r.Explicate()
			if err != nil {
				log.Fatal(err)
			}
			ext = flatRel.Len()
		})
		fmt.Printf("| %d | %d | %d | %d | %s |\n", p.classes, p.fanout, r.Len(), ext, fmtNs(ns))
	}
}

// e5Algebra: operator costs on compact relations (§3.4).
func e5Algebra() {
	header("E5 — algebra: operators on compact relations (paper §3.4)")
	fmt.Println("| tuples/arg | union | intersect | difference | select | result tuples (union) |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, tuples := range []int{5, 10, 20} {
		a, err := workload.RandomConsistent(int64(tuples), "A", 30, tuples)
		check(err)
		b := a.Clone()
		b2, err := workload.RandomConsistent(int64(tuples)+1000, "A", 30, tuples)
		check(err)
		_ = b
		// Arguments must share a schema: reuse a's schema by rebuilding b2
		// over it.
		b = core.NewRelation("B", a.Schema())
		pools := [][]string{a.Schema().Attr(0).Domain.Nodes(), a.Schema().Attr(1).Domain.Nodes()}
		i := 0
		for _, t := range b2.Tuples() {
			item := core.Item{pools[0][i%len(pools[0])], pools[1][(i*7)%len(pools[1])]}
			i++
			if _, present := b.Lookup(item); present {
				continue
			}
			if err := b.Insert(item, t.Sign); err != nil {
				continue
			}
			if len(b.Conflicts()) > 0 {
				b.Retract(item)
			}
		}

		var unionLen int
		unionNs := timeIt(func() {
			u, err := algebra.Union("U", a, b)
			if err != nil {
				log.Fatal(err)
			}
			unionLen = u.Len()
		})
		interNs := timeIt(func() {
			if _, err := algebra.Intersect("I", a, b); err != nil {
				log.Fatal(err)
			}
		})
		diffNs := timeIt(func() {
			if _, err := algebra.Difference("D", a, b); err != nil {
				log.Fatal(err)
			}
		})
		class := a.Schema().Attr(0).Domain.Nodes()[1]
		selNs := timeIt(func() {
			if _, err := algebra.Select("S", a, algebra.Condition{Attr: "A0", Class: class}); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("| %d+%d | %s | %s | %s | %s | %d |\n",
			a.Len(), b.Len(), fmtNs(unionNs), fmtNs(interNs), fmtNs(diffNs), fmtNs(selNs), unionLen)
	}
}

// e6Consistency: the ambiguity-constraint checker (§3.1).
func e6Consistency() {
	header("E6 — integrity: ambiguity-constraint check cost (paper §3.1)")
	fmt.Println("| tuples | hierarchy nodes | time/check |")
	fmt.Println("|---|---|---|")
	for _, p := range []struct{ nodes, tuples int }{
		{20, 10}, {40, 20}, {80, 40},
	} {
		r, err := workload.RandomConsistent(int64(p.nodes), "R", p.nodes, p.tuples)
		check(err)
		ns := timeIt(func() {
			if err := r.CheckConsistency(); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("| %d | %d | %s |\n", r.Len(), p.nodes, fmtNs(ns))
	}
}

// e8Durability: the storage substrate — logged writes, WAL replay and
// snapshot loading.
func e8Durability() {
	header("E8 — durability: WAL writes, replay and snapshot recovery")
	fmt.Println("| facts | logged write | recovery (WAL replay) | recovery (snapshot) |")
	fmt.Println("|---|---|---|---|")
	for _, facts := range []int{100, 400} {
		dir, err := os.MkdirTemp("", "hrbench-*")
		check(err)
		defer os.RemoveAll(dir)
		s, err := storage.Open(dir)
		check(err)
		check(s.CreateHierarchy("D"))
		check(s.AddClass("D", "C"))
		for i := 0; i < facts; i++ {
			check(s.AddInstance("D", fmt.Sprintf("i%05d", i), "C"))
		}
		check(s.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
		for i := 0; i < facts; i++ {
			check(s.Assert("R", fmt.Sprintf("i%05d", i)))
		}
		// One durable write (assert + retract keeps size stable).
		writeNs := timeIt(func() {
			check(s.Assert("R", "C"))
			check(s.Retract("R", "C"))
		})
		check(s.Close())

		replayNs := timeIt(func() {
			s2, err := storage.Open(dir)
			check(err)
			check(s2.Close())
		})

		// Checkpoint, then measure snapshot-based recovery.
		s3, err := storage.Open(dir)
		check(err)
		check(s3.Checkpoint())
		check(s3.Close())
		snapNs := timeIt(func() {
			s4, err := storage.Open(dir)
			check(err)
			check(s4.Close())
		})
		fmt.Printf("| %d | %s | %s | %s |\n", facts, fmtNs(writeNs), fmtNs(replayNs), fmtNs(snapNs))
	}
}

// e10Run times workers×txsPerWorker transactions against a fresh store
// opened with opts and returns total wall-clock nanoseconds. Each
// transaction asserts and retracts a per-worker tuple, so the database size
// stays constant and committers never conflict.
func e10Run(opts storage.Options, workers, txsPerWorker int) float64 {
	dir, err := os.MkdirTemp("", "hrbench-e10-*")
	check(err)
	defer os.RemoveAll(dir)
	s, err := storage.OpenOptions(dir, opts)
	check(err)
	check(s.CreateHierarchy("D"))
	check(s.AddClass("D", "C"))
	check(s.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
	for w := 0; w < workers; w++ {
		check(s.AddInstance("D", fmt.Sprintf("w%02d", w), "C"))
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%02d", w)
			for i := 0; i < txsPerWorker; i++ {
				check(s.ApplyTx([]catalog.TxOp{
					{Kind: "assert", Relation: "R", Values: []string{name}},
					{Kind: "retract", Relation: "R", Values: []string{name}},
				}))
			}
		}(w)
	}
	wg.Wait()
	ns := float64(time.Since(start).Nanoseconds())
	check(s.Close())
	return ns
}

// e10GroupCommit: the crash-safe WAL's group commit — N concurrent
// committers share one fsync per flush instead of paying one per record.
func e10GroupCommit() {
	header("E10 — durability: group commit vs per-record fsync")
	fmt.Println("| committers | txs | per-record fsync | group commit | txn/s (group) | speedup |")
	fmt.Println("|---|---|---|---|---|---|")
	const txsPerWorker = 50
	for _, workers := range []int{1, 4, 8, 16} {
		txs := workers * txsPerWorker
		perNs := e10Run(storage.Options{PerRecordSync: true}, workers, txsPerWorker)
		grpNs := e10Run(storage.Options{}, workers, txsPerWorker)
		total := float64(txs)
		fmt.Printf("| %d | %d | %s/tx | %s/tx | %.0f | %.1f× |\n",
			workers, txs, fmtNs(perNs/total), fmtNs(grpNs/total),
			total/(grpNs/1e9), perNs/grpNs)
	}
}

// e9Parallel: the concurrent evaluation engine — worker-pool batch
// evaluation vs a sequential scan, and the verdict cache on repeated reads.
func e9Parallel() {
	header("E9 — parallel batch evaluation and the verdict cache")
	fmt.Printf("GOMAXPROCS = %d\n\n", runtime.GOMAXPROCS(0))
	fmt.Println("| classes | fanout | items | sequential | parallel batch | speedup | cached re-read | vs sequential |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	ctx := context.Background()
	type e9Row struct {
		Classes      int     `json:"classes"`
		Fanout       int     `json:"fanout"`
		Items        int     `json:"items"`
		SequentialNs float64 `json:"sequential_ns"`
		ParallelNs   float64 `json:"parallel_ns"`
		CachedNs     float64 `json:"cached_ns"`
	}
	var rows []e9Row
	// Atom counts stay under the verdict cache's rotation threshold so the
	// cached column measures steady-state hits, not eviction churn.
	for _, p := range []struct{ classes, fanout int }{
		{10, 100}, {20, 100}, {100, 20},
	} {
		h, err := workload.Taxonomy("D", p.classes, p.fanout)
		check(err)
		r, err := workload.ClassRelation("R", h, p.classes)
		check(err)
		atoms, err := r.AtomicItems()
		check(err)

		seqNs := timeIt(func() {
			if _, err := r.EvaluateBatch(ctx, atoms,
				core.WithParallelism(1), core.WithCache(false)); err != nil {
				log.Fatal(err)
			}
		})
		parNs := timeIt(func() {
			if _, err := r.EvaluateBatch(ctx, atoms, core.WithCache(false)); err != nil {
				log.Fatal(err)
			}
		})
		// Warm the cache once, then measure steady-state cached reads.
		if _, err := r.EvaluateBatch(ctx, atoms); err != nil {
			log.Fatal(err)
		}
		hotNs := timeIt(func() {
			if _, err := r.EvaluateBatch(ctx, atoms); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("| %d | %d | %d | %s | %s | %.1f× | %s | %.1f× |\n",
			p.classes, p.fanout, len(atoms), fmtNs(seqNs), fmtNs(parNs), seqNs/parNs,
			fmtNs(hotNs), seqNs/hotNs)
		rows = append(rows, e9Row{
			Classes: p.classes, Fanout: p.fanout, Items: len(atoms),
			SequentialNs: seqNs, ParallelNs: parNs, CachedNs: hotNs,
		})
	}
	emitJSON("E9", struct {
		GOMAXPROCS int     `json:"gomaxprocs"`
		Rows       []e9Row `json:"rows"`
	}{runtime.GOMAXPROCS(0), rows})
}

// e11Replication: the replication subsystem — how long a cold follower
// takes to catch up (snapshot bootstrap + WAL tail) and how quickly a
// steady-state write becomes visible on the replica.
func e11Replication() {
	header("E11 — replication: cold catch-up and write propagation")
	fmt.Println("| preloaded facts | cold catch-up | propagation p50 | propagation max |")
	fmt.Println("|---|---|---|---|")
	for _, facts := range []int{100, 400, 1600} {
		dir, err := os.MkdirTemp("", "hrbench-e11-*")
		check(err)
		defer os.RemoveAll(dir)
		store, err := hrdb.OpenStore(dir)
		check(err)
		primary := hrdb.NewPrimary(store, hrdb.PrimaryOptions{HeartbeatInterval: 10 * time.Millisecond})
		replSrv := hrdb.NewServer(store, hrdb.ServerOptions{Repl: primary})
		check(replSrv.Start("127.0.0.1:0"))

		check(store.CreateHierarchy("D"))
		check(store.AddClass("D", "C"))
		check(store.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
		for i := 0; i < facts; i++ {
			check(store.AddInstance("D", fmt.Sprintf("i%05d", i), "C"))
			check(store.Assert("R", fmt.Sprintf("i%05d", i)))
		}

		// Cold catch-up: the follower starts with everything already written
		// and must bootstrap from a snapshot, then drain the WAL tail.
		converged := func(rep *hrdb.Replica) time.Duration {
			start := time.Now()
			want := hrdb.Fingerprint(store.Database())
			for hrdb.Fingerprint(rep.Database()) != want {
				if time.Since(start) > 30*time.Second {
					log.Fatal("E11: replica never converged")
				}
				time.Sleep(time.Millisecond)
			}
			return time.Since(start)
		}
		replica := hrdb.NewReplica(replSrv.Addr(), hrdb.ReplicaOptions{
			ReconnectBackoff: 5 * time.Millisecond,
		})
		catchup := converged(replica)

		// Steady-state propagation: one durable write until it is visible in
		// the replica's database.
		lat := make([]time.Duration, 0, 20)
		for i := 0; i < 20; i++ {
			check(store.Assert("R", "C"))
			lat = append(lat, converged(replica))
			check(store.Retract("R", "C"))
			lat = append(lat, converged(replica))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("| %d | %s | %s | %s |\n", facts,
			fmtNs(float64(catchup.Nanoseconds())),
			fmtNs(float64(lat[len(lat)/2].Nanoseconds())),
			fmtNs(float64(lat[len(lat)-1].Nanoseconds())))

		check(replica.Close())
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		check(replSrv.Shutdown(ctx))
		cancel()
		check(store.Close())
	}
}

// e12Fixture builds a database whose EXTENSION query is expensive: classes
// classes of fanout instances each, all asserted at the class level, so
// flattening materializes classes×fanout rows.
func e12Fixture(classes, fanout int) *hrdb.Database {
	db := hrdb.NewDatabase()
	sess := hrdb.NewSession(db)
	var b strings.Builder
	b.WriteString("CREATE HIERARCHY D;\n")
	for c := 0; c < classes; c++ {
		fmt.Fprintf(&b, "CLASS C%d IN D;\n", c)
		for i := 0; i < fanout; i++ {
			fmt.Fprintf(&b, "INSTANCE i%d_%d UNDER C%d;\n", c, i, c)
		}
	}
	b.WriteString("CREATE RELATION R (X: D);\n")
	for c := 0; c < classes; c++ {
		fmt.Fprintf(&b, "ASSERT R (C%d);\n", c)
	}
	if _, err := sess.Exec(b.String()); err != nil {
		log.Fatal(err)
	}
	return db
}

// e12Target injects a fixed delay into Explicate, modeling the cold-scan
// cost of flattening a large relation without burning the benchmark box's
// single CPU — what the experiment measures is protocol head-of-line
// blocking, which must not be confounded with scheduler contention.
type e12Target struct {
	hrdb.Target
	delay time.Duration
}

func (t e12Target) Explicate(rel string, attrs ...string) error {
	time.Sleep(t.delay)
	return t.Target.Explicate(rel, attrs...)
}

// e12Pipelining drives one client with 64 interleaved request streams —
// stream 0 runs the slow flattening statement, the other 63 issue point
// HOLDS probes — and reports the probes' latency quantiles. On the v1 line
// protocol every probe queues behind the flattening statement on the
// single in-order connection; on v2 the probes pipeline past it on the
// same socket.
func e12Pipelining(addr string, forceV1 bool) (slow time.Duration, lat []time.Duration) {
	opts := []hrdb.Option{hrdb.WithMaxRetries(0)}
	proto := hrdb.ProtocolAuto
	if forceV1 {
		proto = hrdb.ProtocolV1
	}
	c, err := hrdb.Dial(addr, append(opts, hrdb.WithProtocol(proto))...)
	check(err)
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Exec(ctx, "HOLDS R (i0_0);"); err != nil { // warm the connection
		log.Fatal(err)
	}

	var (
		mu      sync.Mutex
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		probeNs []time.Duration
	)
	slowStart := time.Now()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := c.Exec(ctx, "EXPLICATE R;"); err != nil {
			log.Fatal(err)
		}
	}()
	// Give the flattening statement a head start so every probe measured
	// genuinely contends with it, on the wire (v1) or not (v2).
	time.Sleep(10 * time.Millisecond)
	for s := 1; s < 64; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := c.Exec(ctx, "HOLDS R (i0_0);"); err != nil {
					log.Fatal(err)
				}
				d := time.Since(t0)
				mu.Lock()
				probeNs = append(probeNs, d)
				mu.Unlock()
			}
		}()
	}
	<-slowDone
	slow = time.Since(slowStart)
	close(stop)
	wg.Wait()
	sort.Slice(probeNs, func(i, j int) bool { return probeNs[i] < probeNs[j] })
	return slow, probeNs
}

// e12Multiplexing: the framed multiplexed wire protocol v2 — fast streams
// overtake a slow one on a shared connection, and per-tenant admission
// quotas shed a flooding tenant without touching its neighbor, verified by
// the tenant-labeled series in a metrics scrape.
func e12Multiplexing() {
	header("E12 — wire protocol v2: pipelining and tenant isolation")

	db := e12Fixture(10, 100)
	quiet := hrdb.NewDatabase()
	if _, err := hrdb.NewSession(quiet).Exec("CREATE HIERARCHY Q; CLASS C IN Q; INSTANCE q0 UNDER C; CREATE RELATION S (X: Q); ASSERT S (C);"); err != nil {
		log.Fatal(err)
	}
	srv := hrdb.NewServer(e12Target{Target: hrdb.NewMemTarget(db), delay: 150 * time.Millisecond}, hrdb.ServerOptions{
		Workers: 4, QueueDepth: 64, MaxConns: 512,
		Tenants: []hrdb.TenantConfig{
			{Name: "noisy", Limits: hrdb.TenantLimits{MaxInflight: 2, RatePerSec: 50}},
			{Name: "quiet", Target: hrdb.NewMemTarget(quiet)},
		},
	})
	check(srv.Start("127.0.0.1:0"))
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		check(srv.Shutdown(ctx))
	}()

	fmt.Println("64 interleaved streams on one connection; stream 0 flattens the relation")
	fmt.Println("(EXPLICATE against a store with 150ms of injected scan latency), 63 issue point probes.")
	fmt.Println()
	fmt.Println("| protocol | slow query | probes | probe p50 | probe p99 |")
	fmt.Println("|---|---|---|---|---|")
	type e12Proto struct {
		Protocol string  `json:"protocol"`
		SlowNs   float64 `json:"slow_query_ns"`
		Probes   int     `json:"probes"`
		P50Ns    float64 `json:"probe_p50_ns"`
		P99Ns    float64 `json:"probe_p99_ns"`
	}
	var protoRows []e12Proto
	var p50 [2]time.Duration
	for i, forceV1 := range []bool{true, false} {
		slow, lat := e12Pipelining(srv.Addr(), forceV1)
		if len(lat) == 0 {
			log.Fatal("E12: no probes completed")
		}
		p50[i] = lat[len(lat)/2]
		name := "v2 (framed)"
		if forceV1 {
			name = "v1 (line)"
		}
		p99 := lat[len(lat)*99/100]
		fmt.Printf("| %s | %s | %d | %s | %s |\n", name,
			fmtNs(float64(slow.Nanoseconds())), len(lat),
			fmtNs(float64(p50[i].Nanoseconds())),
			fmtNs(float64(p99.Nanoseconds())))
		protoRows = append(protoRows, e12Proto{
			Protocol: name, SlowNs: float64(slow.Nanoseconds()), Probes: len(lat),
			P50Ns: float64(p50[i].Nanoseconds()), P99Ns: float64(p99.Nanoseconds()),
		})
	}
	fmt.Printf("\nprobe p50 improvement, v2 over v1: %.1f×\n", float64(p50[0])/float64(p50[1]))

	// Tenant isolation: flood "noisy" past its quota while "quiet" runs a
	// steady probe load; the scrape's labeled series carry the verdict.
	cn, err := hrdb.Dial(srv.Addr(), hrdb.WithTenant("noisy"), hrdb.WithMaxRetries(0))
	check(err)
	defer cn.Close()
	cq, err := hrdb.Dial(srv.Addr(), hrdb.WithTenant("quiet"), hrdb.WithMaxRetries(0))
	check(err)
	defer cq.Close()
	ctx := context.Background()

	quietRun := func(n int) []time.Duration {
		lat := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			t0 := time.Now()
			if _, err := cq.Exec(ctx, "HOLDS S (q0);"); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat
	}
	baseline := quietRun(200)

	const floodN = 400
	var floodShed, floodOK int64
	var quietLat []time.Duration
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < floodN/8; i++ {
				_, err := cn.Exec(ctx, "SHOW RELATIONS;")
				mu.Lock()
				if errors.Is(err, hrdb.ErrQuotaExceeded) {
					floodShed++
				} else if err == nil {
					floodOK++
				} else {
					log.Fatal(err)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		quietLat = quietRun(200)
	}()
	wg.Wait()

	scrape, err := cq.Stats(ctx)
	check(err)
	metric := func(name string) string {
		for _, line := range strings.Split(scrape, "\n") {
			if strings.HasPrefix(line, name+" ") {
				return strings.TrimSpace(strings.TrimPrefix(line, name))
			}
		}
		return "0"
	}
	fmt.Println()
	fmt.Printf("noisy tenant (max-inflight=2, rate=50/s): %d/%d statements shed with %q\n",
		floodShed, floodN, "quota")
	fmt.Println()
	fmt.Println("| tenant | scrape: requests | scrape: shed | quiet p50 |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| noisy | %s | %s | — |\n",
		metric(`hrdb_tenant_requests_total{tenant="noisy"}`),
		metric(`hrdb_tenant_shed_total{tenant="noisy"}`))
	fmt.Printf("| quiet (before flood) | — | — | %s |\n",
		fmtNs(float64(baseline[len(baseline)/2].Nanoseconds())))
	fmt.Printf("| quiet (during flood) | %s | %s | %s |\n",
		metric(`hrdb_tenant_requests_total{tenant="quiet"}`),
		metric(`hrdb_tenant_shed_total{tenant="quiet"}`),
		fmtNs(float64(quietLat[len(quietLat)/2].Nanoseconds())))
	if floodShed == 0 {
		log.Fatal("E12: the flood was never shed — quota enforcement is broken")
	}
	if shed := metric(`hrdb_tenant_shed_total{tenant="quiet"}`); shed != "0" {
		log.Fatalf("E12: quiet tenant shed %s statements during a neighbor's flood", shed)
	}
	emitJSON("E12", struct {
		Pipelining       []e12Proto `json:"pipelining"`
		FloodStatements  int        `json:"flood_statements"`
		FloodShed        int64      `json:"flood_shed"`
		QuietP50BeforeNs float64    `json:"quiet_p50_before_ns"`
		QuietP50DuringNs float64    `json:"quiet_p50_during_ns"`
	}{protoRows, floodN, floodShed,
		float64(baseline[len(baseline)/2].Nanoseconds()),
		float64(quietLat[len(quietLat)/2].Nanoseconds())})
}

// e7Mining: the §4 extension — automatic organization of flat relations.
func e7Mining() {
	header("E7 — mining: mechanical hierarchy discovery (paper §4)")
	fmt.Println("| groups | members | contexts | flat rows | mined tuples | compression | time |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, p := range []struct{ groups, members, contexts int }{
		{5, 10, 4}, {10, 20, 5}, {20, 50, 4},
	} {
		r := workload.ClusteredFlat("R", p.groups, p.members, p.contexts)
		var res *mining.Result
		ns := timeIt(func() {
			var err error
			res, err = mining.Mine(r, 0)
			if err != nil {
				log.Fatal(err)
			}
		})
		fmt.Printf("| %d | %d | %d | %d | %d | %.0f× | %s |\n",
			p.groups, p.members, p.contexts, res.FlatRows, res.StoredTuples,
			res.CompressionRatio(), fmtNs(ns))
	}
}
