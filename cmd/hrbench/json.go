package main

import (
	"encoding/json"
	"log"
	"os"
	"path/filepath"
)

// jsonDir is where machine-readable BENCH_<exp>.json files go; empty means
// no JSON output. Set by the -json flag in main.
var jsonDir string

// emitJSON writes one experiment's machine-readable result next to the
// printed table, so CI can archive benchmark history as artifacts without
// scraping markdown.
func emitJSON(exp string, v any) {
	if jsonDir == "" {
		return
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("%s: marshal JSON: %v", exp, err)
	}
	path := filepath.Join(jsonDir, "BENCH_"+exp+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("%s: write %s: %v", exp, path, err)
	}
	log.Printf("%s: wrote %s", exp, path)
}
