package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"hrdb/internal/catalog"
	"hrdb/internal/hql"
	"hrdb/internal/storage"
	"hrdb/internal/view"
)

// e15Row is one fixture size's materialized-view measurement.
type e15Row struct {
	Classes      int     `json:"classes"`
	Fanout       int     `json:"fanout"`
	ViewRows     int     `json:"view_rows"`
	RequeryNs    float64 `json:"requery_ns"`
	WarmReadNs   float64 `json:"warm_read_ns"`
	Speedup      float64 `json:"speedup"`
	DeltaApplyNs float64 `json:"delta_apply_ns"`
	Deltas       uint64  `json:"deltas_applied"`
	Recomputes   uint64  `json:"recomputes"`
}

// e15Fixture builds a durable store holding a classes×fanout taxonomy with
// every class asserted at the class level — so the relation stores `classes`
// tuples whose flat extension is classes×fanout rows — plus a spare class Z
// with one unasserted instance z0 for one-row delta probes. A view manager
// maintains `flat`, the materialized extension.
func e15Fixture(classes, fanout int) (st *storage.Store, m *view.Manager, cleanup func()) {
	dir, err := os.MkdirTemp("", "hrbench-e15-*")
	check(err)
	st, err = storage.Open(dir)
	check(err)
	check(st.CreateHierarchy("D"))
	for c := 0; c < classes; c++ {
		check(st.AddClass("D", fmt.Sprintf("C%d", c)))
	}
	check(st.AddClass("D", "Z"))
	check(st.AddInstance("D", "z0", "Z"))
	// Concurrent seeding lets group commit amortize the fsyncs.
	total := classes * fanout
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += workers {
				check(st.AddInstance("D", fmt.Sprintf("i%06d", i), fmt.Sprintf("C%d", i%classes)))
			}
		}(w)
	}
	wg.Wait()
	check(st.CreateRelation("R", catalog.AttrSpec{Name: "X", Domain: "D"}))
	for c := 0; c < classes; c++ {
		check(st.Assert("R", fmt.Sprintf("C%d", c)))
	}
	m, err = view.Open(st, view.Options{})
	check(err)
	check(m.Create("flat", "EXTENSION R"))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	check(m.Wait(ctx))
	cancel()
	return st, m, func() {
		check(m.Close())
		check(st.Close())
		check(os.RemoveAll(dir))
	}
}

// e15Views: materialized inherited views. The defining query flattens the
// class-level relation through the hierarchy, so re-running it costs
// O(extension); a warm view read returns the maintained rows without any
// evaluation, and a one-tuple write folds into the view as an O(delta)
// journal entry rather than a recompute. The speedup column is
// requery/warm-read; the acceptance bar is ≥10× at the 10k-row fixture.
// Delta-apply latency staying flat while the view grows 10× is the O(delta)
// evidence.
func e15Views() {
	header("E15 — materialized views: warm reads vs re-query, delta-apply cost")
	fmt.Println("| classes | fanout | view rows | re-run query | warm view read | speedup | delta apply | deltas | recomputes |")
	fmt.Println("|---|---|---|---|---|---|---|---|---|")

	ctx := context.Background()
	var rows []e15Row
	for _, p := range []struct{ classes, fanout int }{
		{10, 100}, {10, 400}, {10, 1000},
	} {
		st, m, cleanup := e15Fixture(p.classes, p.fanout)
		sess := hql.NewSession(view.NewTarget(st, m))

		// Re-running the defining flattening query evaluates every stored
		// tuple's extension from scratch.
		requeryNs := timeIt(func() {
			if _, err := sess.Exec("EXTENSION R;"); err != nil {
				log.Fatal(err)
			}
		})
		// A warm view read is the maintained result, copied out.
		var viewRows int
		warmNs := timeIt(func() {
			rs, err := m.Rows("flat")
			if err != nil {
				log.Fatal(err)
			}
			viewRows = len(rs)
		})
		// One-row delta: assert/retract an instance tuple no class tuple
		// covers, waiting for the maintenance loop to fold each side in.
		deltaNs := timeIt(func() {
			check(st.Assert("R", "z0"))
			check(m.Wait(ctx))
			check(st.Retract("R", "z0"))
			check(m.Wait(ctx))
		}) / 2 // two deltas per cycle
		deltas, recomputes, err := m.Stats("flat")
		check(err)
		cleanup()

		row := e15Row{
			Classes: p.classes, Fanout: p.fanout, ViewRows: viewRows,
			RequeryNs: requeryNs, WarmReadNs: warmNs, Speedup: requeryNs / warmNs,
			DeltaApplyNs: deltaNs, Deltas: deltas, Recomputes: recomputes,
		}
		rows = append(rows, row)
		fmt.Printf("| %d | %d | %d | %s | %s | %.0f× | %s | %d | %d |\n",
			row.Classes, row.Fanout, row.ViewRows, fmtNs(row.RequeryNs),
			fmtNs(row.WarmReadNs), row.Speedup, fmtNs(row.DeltaApplyNs),
			row.Deltas, row.Recomputes)
		if row.Recomputes > 1 {
			log.Fatalf("E15: %d recomputes — tuple-only writes must take the delta path", row.Recomputes)
		}
	}
	last := rows[len(rows)-1]
	if last.Speedup < 10 {
		log.Fatalf("E15: warm view read only %.1f× faster than re-query at %d rows (want ≥10×)",
			last.Speedup, last.ViewRows)
	}
	fmt.Printf("\nwarm read speedup at %d rows: %.0f×; delta apply %s (%d rows) vs %s (%d rows)\n",
		last.ViewRows, last.Speedup,
		fmtNs(rows[0].DeltaApplyNs), rows[0].ViewRows, fmtNs(last.DeltaApplyNs), last.ViewRows)
	emitJSON("E15", struct {
		Rows []e15Row `json:"rows"`
	}{rows})
}
