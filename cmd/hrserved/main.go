// Command hrserved serves a hierarchical relational database over TCP
// using the HQL line protocol (see docs/HQL.md, "Wire protocol").
//
//	hrserved -data ./mydb                 # durable database in ./mydb
//	hrserved -addr :7583                  # in-memory database
//	hrserved -data ./mydb -workers 4 -queue 32 -max-conns 128
//	hrserved -metrics-addr 127.0.0.1:9090 # HTTP /metrics + /debug/pprof
//	hrserved -slow-query 100ms            # log slow statements to stderr
//
// The server sheds load beyond its queue with "overloaded" replies,
// enforces per-request deadlines, and on SIGINT/SIGTERM drains in-flight
// statements (bounded by -drain) before closing the store. Process metrics
// are also available over the wire protocol's STATS verb regardless of
// -metrics-addr; see docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hrdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7583", "listen address")
	dataDir := flag.String("data", "", "durable database directory (empty = in-memory)")
	workers := flag.Int("workers", 0, "statement-executing workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
	maxConns := flag.Int("max-conns", 0, "concurrent connection limit (0 = 256)")
	idle := flag.Duration("idle", 0, "idle connection timeout (0 = 5m, <0 disables)")
	maxDeadline := flag.Duration("max-deadline", 0, "per-request deadline cap (0 = 30s, <0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus) and /debug/pprof (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "log statements at least this slow to stderr (0 = disabled)")
	flag.Parse()

	opts := hrdb.ServerOptions{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
		MaxDeadline: *maxDeadline,
	}
	if *slowQuery > 0 {
		opts.SlowQuery = hrdb.NewSlowQueryLog(os.Stderr, *slowQuery)
	}
	if err := run(*addr, *dataDir, *metricsAddr, opts, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "hrserved:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir, metricsAddr string, opts hrdb.ServerOptions, drain time.Duration) error {
	var target hrdb.Target
	if dataDir != "" {
		store, err := hrdb.OpenStore(dataDir)
		if err != nil {
			return err
		}
		// The server owns the store's lifetime: Shutdown closes it exactly
		// once after the drain, so acknowledged statements are durable.
		opts.CloseTarget = true
		target = store
		fmt.Fprintf(os.Stderr, "hrserved: durable database at %s\n", dataDir)
	} else {
		target = hrdb.NewMemTarget(hrdb.NewDatabase())
		fmt.Fprintln(os.Stderr, "hrserved: in-memory database (no -data; state dies with the process)")
	}

	srv := hrdb.NewServer(target, opts)
	if err := srv.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hrserved: serving HQL on %s\n", srv.Addr())

	if metricsAddr != "" {
		ms, err := hrdb.ServeMetrics(metricsAddr)
		if err != nil {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			srv.Shutdown(shutdownCtx)
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "hrserved: metrics and pprof on http://%s/\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "hrserved: %v — draining (budget %v)\n", s, drain)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(os.Stderr, "hrserved: clean shutdown")
	return nil
}
