// Command hrserved serves a hierarchical relational database over TCP
// using the HQL wire protocol — framed multiplexed v2 with a line-protocol
// v1 fallback (see docs/HQL.md, "Wire protocol").
//
//	hrserved -data ./mydb                 # durable database in ./mydb
//	hrserved -addr :7583                  # in-memory database
//	hrserved -data ./mydb -workers 4 -queue 32 -max-conns 128
//	hrserved -metrics-addr 127.0.0.1:9090 # HTTP /metrics + /debug/pprof
//	hrserved -slow-query 100ms            # log slow statements to stderr
//
// Multi-tenancy (see README "Multi-tenancy"):
//
//	hrserved -tenant acme -tenant "beta:max-inflight=4,rate=100,burst=200"
//
// Each -tenant declares a named in-memory namespace with its own admission
// quota and rate limit; clients select one at connect time (HELLO on v2,
// USE on v1). Limits on the default namespace: -tenant "default:rate=500".
// -disable-v2 serves only the v1 line protocol (compatibility testing).
//
// Materialized views (see docs/VIEWS.md):
//
//	hrserved -data ./mydb -views
//
// -views enables CREATE MATERIALIZED VIEW (registered views are computed
// once, persisted next to the store, and maintained incrementally from the
// committed WAL) and the SUBSCRIBE verb, which streams view and relation
// change feeds to clients with resumable positions on both protocols.
//
// Replication (see docs/REPLICATION.md):
//
//	hrserved -data ./mydb -repl-addr :7584   # primary: serve WAL shipping on :7584
//	hrserved -replica-of host:7584           # read replica following a primary
//
// A primary with -repl-addr serves snapshots (SNAP) and WAL streams (REPL)
// to followers on a dedicated listener, so bulk shipping never competes
// with client admission control. A replica keeps a copy in sync over TCP,
// answers read-only HQL plus the LAG verb, rejects writes, and flips
// writable when told PROMOTE (manual failover) or — with -auto-failover —
// when it wins an election after the primary falls silent.
//
// Self-healing failover (see docs/REPLICATION.md):
//
//	hrserved -replica-of host:7584 -id r1 -peer hostB:7583 \
//	    -auto-failover -election-timeout 2s \
//	    -data ./r1db -repl-addr :7584
//
// -id names the replica for deterministic election tiebreaks; -peer (one
// per peer replica, client address) is who it consults before
// self-promoting. With -data, promotion is durable: the applied state is
// materialized as a store under a fresh fencing term and the node serves
// replication on -repl-addr to the surviving replicas. A deposed primary
// restarted with -peer flags detects the newer term, quarantines its
// unreplicated WAL suffix to a sidecar file, and rejoins as a replica of
// whoever won.
//
// Sharding (see docs/SHARDING.md):
//
//	hrserved -shard-id 0 -shard-peers hostA:7583,hostB:7583,hostC:7583
//
// -shard-id/-shard-peers declare this node one shard of a hash-partitioned
// cluster: it answers SHARDMAP with its identity and EXECSHARD with
// shard-local reads and two-phase-commit participation. Combine with
// -replica-of/-repl-addr to give each shard a replica set; coordinators
// (hrdb.DialCluster) ride shard failovers through the same Router machinery
// as any client.
//
// The server sheds load beyond its queue with "overloaded" replies,
// enforces per-request deadlines, and on SIGINT/SIGTERM drains in-flight
// statements (bounded by -drain) before closing the store. Process metrics
// are also available over the wire protocol's STATS verb regardless of
// -metrics-addr; see docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hrdb"
)

// rejoinProbeTimeout bounds each peer probe a restarting durable node makes
// to discover whether it was deposed while down.
const rejoinProbeTimeout = 3 * time.Second

type serveConfig struct {
	views           bool
	addr            string
	dataDir         string
	metricsAddr     string
	replAddr        string
	replicaOf       string
	id              string
	peers           []string
	autoFailover    bool
	electionTimeout time.Duration
	drain           time.Duration
	shardID         int
	shardPeers      []string
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7583", "listen address")
	dataDir := flag.String("data", "", "durable database directory (primary), or durable-promotion directory (replica mode)")
	workers := flag.Int("workers", 0, "statement-executing workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
	maxConns := flag.Int("max-conns", 0, "concurrent connection limit (0 = 256)")
	idle := flag.Duration("idle", 0, "idle connection timeout (0 = 5m, <0 disables)")
	maxDeadline := flag.Duration("max-deadline", 0, "per-request deadline cap (0 = 30s, <0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus) and /debug/pprof (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "log statements at least this slow to stderr (0 = disabled)")
	replAddr := flag.String("repl-addr", "", "replication listen address (primary, or replica once promoted)")
	replicaOf := flag.String("replica-of", "", "primary replication address to follow (replica mode)")
	id := flag.String("id", "", "replica election identity (required with -auto-failover; equally caught-up candidates tiebreak lexicographically)")
	autoFailover := flag.Bool("auto-failover", false, "self-promote after -election-timeout of replication silence (replica mode)")
	electionTimeout := flag.Duration("election-timeout", 0, "replication silence that triggers an election campaign (0 = 2s)")
	disableV2 := flag.Bool("disable-v2", false, "serve only the v1 line protocol (reject HELLO upgrades)")
	views := flag.Bool("views", false, "enable materialized views and SUBSCRIBE change feeds (requires -data)")
	shardID := flag.Int("shard-id", -1, "this node's shard index (requires -shard-peers; -1 = not a shard)")
	shardPeers := flag.String("shard-peers", "", "comma-separated client addresses of every shard, in shard-id order (fixes the shard count)")
	var peers peerFlags
	flag.Var(&peers, "peer", "client address of a peer node, repeatable (election probes; deposed-primary rejoin checks)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", `named namespace, repeatable: "name[:max-inflight=N,rate=R,burst=B]"`)
	flag.Parse()

	opts := hrdb.ServerOptions{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
		MaxDeadline: *maxDeadline,
		Tenants:     tenants.configs,
		DisableV2:   *disableV2,
	}
	if *slowQuery > 0 {
		opts.SlowQuery = hrdb.NewSlowQueryLog(os.Stderr, *slowQuery)
	}
	cfg := serveConfig{
		views:           *views,
		addr:            *addr,
		dataDir:         *dataDir,
		metricsAddr:     *metricsAddr,
		replAddr:        *replAddr,
		replicaOf:       *replicaOf,
		id:              *id,
		peers:           peers.addrs,
		autoFailover:    *autoFailover,
		electionTimeout: *electionTimeout,
		drain:           *drain,
		shardID:         *shardID,
	}
	if *shardPeers != "" {
		cfg.shardPeers = strings.Split(*shardPeers, ",")
	}
	if err := run(cfg, opts); err != nil {
		fmt.Fprintln(os.Stderr, "hrserved:", err)
		os.Exit(1)
	}
}

func run(cfg serveConfig, opts hrdb.ServerOptions) error {
	if cfg.replAddr != "" && cfg.dataDir == "" && cfg.replicaOf == "" {
		return errors.New("-repl-addr requires -data or -replica-of: only a durable store or a promotable replica has a WAL to ship")
	}
	if cfg.autoFailover && cfg.replicaOf == "" {
		return errors.New("-auto-failover is a replica flag; it requires -replica-of")
	}
	if cfg.autoFailover && cfg.id == "" {
		return errors.New("-auto-failover requires -id: elections tiebreak on a distinct replica identity")
	}
	if cfg.shardID >= 0 && len(cfg.shardPeers) == 0 {
		return errors.New("-shard-id requires -shard-peers: the peer list fixes the shard count")
	}
	if cfg.shardID < 0 && len(cfg.shardPeers) > 0 {
		return errors.New("-shard-peers requires -shard-id: the node must know its own slot")
	}
	if cfg.shardID >= len(cfg.shardPeers) && len(cfg.shardPeers) > 0 {
		return fmt.Errorf("-shard-id %d out of range: -shard-peers lists %d shards", cfg.shardID, len(cfg.shardPeers))
	}
	if cfg.views && (cfg.dataDir == "" || cfg.replicaOf != "") {
		return errors.New("-views requires -data: view maintenance tails a durable store's WAL")
	}

	var store *hrdb.Store
	if cfg.dataDir != "" && cfg.replicaOf == "" {
		st, err := hrdb.OpenStore(cfg.dataDir)
		if err != nil {
			return err
		}
		store = st
		// A durable node restarting with peers configured may have been
		// deposed while it was down (or partitioned): probe the peers, and
		// if anyone holds a higher fencing term, quarantine the WAL suffix
		// the new lineage never saw and rejoin as that winner's replica.
		if len(cfg.peers) > 0 {
			if dep := hrdb.CheckDeposed(store, cfg.peers, rejoinProbeTimeout); dep != nil {
				quarantine, err := hrdb.Demote(store, dep, rejoinProbeTimeout)
				if err != nil {
					store.Close()
					return fmt.Errorf("rejoin after deposition by term %d: %w", dep.Term, err)
				}
				if quarantine != "" {
					fmt.Fprintf(os.Stderr, "hrserved: deposed by term %d — unreplicated WAL suffix preserved in %s\n", dep.Term, quarantine)
				} else {
					fmt.Fprintf(os.Stderr, "hrserved: deposed by term %d — no divergent WAL suffix\n", dep.Term)
				}
				fmt.Fprintf(os.Stderr, "hrserved: rejoining as replica of %s\n", dep.Source)
				store = nil
				cfg.replicaOf = dep.Source
			}
		}
	}

	var target hrdb.Target
	var replSrv *hrdb.Server
	switch {
	case cfg.replicaOf != "":
		replica := hrdb.NewReplica(cfg.replicaOf, hrdb.ReplicaOptions{
			ID:              cfg.id,
			Peers:           cfg.peers,
			AutoFailover:    cfg.autoFailover,
			ElectionTimeout: cfg.electionTimeout,
			PromoteDir:      cfg.dataDir,
			Advertise:       cfg.replAddr,
		})
		defer replica.Close()
		target = hrdb.ReplicaTarget{R: replica}
		opts.LagProbe = func() hrdb.LagInfo {
			st := replica.Status()
			return hrdb.LagInfo{
				Staleness: st.Staleness,
				Epoch:     st.Epoch,
				Offset:    st.Offset,
				State:     st.State,
				Term:      st.Term,
				ID:        st.ID,
				Source:    st.Source,
			}
		}
		opts.Promote = func() error {
			err := replica.Promote()
			if err == nil && cfg.dataDir != "" {
				fmt.Fprintf(os.Stderr, "hrserved: promoted (term %d) — accepting writes, durable at %s\n", replica.Term(), cfg.dataDir)
			} else if err == nil {
				fmt.Fprintf(os.Stderr, "hrserved: promoted (term %d) — accepting writes (in-memory; state dies with the process)\n", replica.Term())
			}
			return err
		}
		if cfg.replAddr != "" {
			// The replication listener is up from the start so surviving
			// peers can retarget the moment this node wins an election; it
			// answers "not promoted" until then.
			replSrv = hrdb.NewServer(target, hrdb.ServerOptions{Repl: replica})
			if err := replSrv.Start(cfg.replAddr); err != nil {
				return fmt.Errorf("replication listener: %w", err)
			}
			replica.SetAdvertise(replSrv.Addr())
			fmt.Fprintf(os.Stderr, "hrserved: serving replication on %s (once promoted)\n", replSrv.Addr())
		}
		mode := "in-memory copy"
		if cfg.dataDir != "" {
			mode = "durable promotion into " + cfg.dataDir
		}
		fmt.Fprintf(os.Stderr, "hrserved: read replica of %s (%s)\n", cfg.replicaOf, mode)
	case cfg.dataDir != "":
		// The server owns the store's lifetime: Shutdown closes it exactly
		// once after the drain, so acknowledged statements are durable.
		opts.CloseTarget = true
		target = store
		fmt.Fprintf(os.Stderr, "hrserved: durable database at %s\n", cfg.dataDir)
		if cfg.views {
			// Views persist next to the store and are maintained from its
			// committed WAL stream; the manager closes after the drain (its
			// tail loop ends when the store does).
			vm, err := hrdb.OpenViews(store, hrdb.ViewOptions{Dir: cfg.dataDir})
			if err != nil {
				store.Close()
				return fmt.Errorf("views: %w", err)
			}
			defer vm.Close()
			target = hrdb.NewViewTarget(store, vm)
			opts.Subscribe = vm
			fmt.Fprintf(os.Stderr, "hrserved: materialized views enabled (%d restored)\n", len(vm.Names()))
		}
		if cfg.replAddr != "" {
			// Replication rides a dedicated listener sharing the store, so
			// snapshot fetches and WAL streams never occupy the client
			// listener's admission slots.
			primary := hrdb.NewPrimary(store, hrdb.PrimaryOptions{})
			replSrv = hrdb.NewServer(store, hrdb.ServerOptions{Repl: primary})
			if err := replSrv.Start(cfg.replAddr); err != nil {
				store.Close()
				return fmt.Errorf("replication listener: %w", err)
			}
			fmt.Fprintf(os.Stderr, "hrserved: serving replication on %s\n", replSrv.Addr())
		}
	default:
		target = hrdb.NewMemTarget(hrdb.NewDatabase())
		fmt.Fprintln(os.Stderr, "hrserved: in-memory database (no -data; state dies with the process)")
	}

	if cfg.shardID >= 0 {
		// The shard node wraps whichever target this process serves —
		// durable store, in-memory database, or promotable replica — so a
		// shard primary's replica set gives the shard HA for free.
		opts.Shard = hrdb.NewShardNode(target, cfg.shardID, len(cfg.shardPeers))
		fmt.Fprintf(os.Stderr, "hrserved: shard %d of %d\n", cfg.shardID, len(cfg.shardPeers))
	}

	srv := hrdb.NewServer(target, opts)
	if err := srv.Start(cfg.addr); err != nil {
		if replSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
			defer cancel()
			replSrv.Shutdown(ctx)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "hrserved: serving HQL on %s\n", srv.Addr())

	if cfg.metricsAddr != "" {
		ms, err := hrdb.ServeMetrics(cfg.metricsAddr)
		if err != nil {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
			defer cancel()
			srv.Shutdown(shutdownCtx)
			if replSrv != nil {
				replSrv.Shutdown(shutdownCtx)
			}
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "hrserved: metrics and pprof on http://%s/\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "hrserved: %v — draining (budget %v)\n", s, cfg.drain)

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if replSrv != nil {
		// Stop feeding followers first; the client listener (which owns
		// the store) drains and closes after.
		replSrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(os.Stderr, "hrserved: clean shutdown")
	return nil
}

// peerFlags collects repeatable -peer addresses.
type peerFlags struct {
	addrs []string
}

func (pf *peerFlags) String() string { return strings.Join(pf.addrs, ",") }

func (pf *peerFlags) Set(v string) error {
	if v == "" {
		return errors.New("peer address must not be empty")
	}
	pf.addrs = append(pf.addrs, v)
	return nil
}

// tenantFlags collects repeatable -tenant declarations:
// "name" (unlimited) or "name:max-inflight=N,rate=R,burst=B" (any subset).
type tenantFlags struct {
	configs []hrdb.TenantConfig
}

func (tf *tenantFlags) String() string {
	names := make([]string, len(tf.configs))
	for i, c := range tf.configs {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}

func (tf *tenantFlags) Set(v string) error {
	name, spec, _ := strings.Cut(v, ":")
	if name == "" {
		return errors.New("tenant name must not be empty")
	}
	cfg := hrdb.TenantConfig{Name: name}
	if spec != "" {
		for _, kv := range strings.Split(spec, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("tenant %s: limit %q is not key=value", name, kv)
			}
			switch key {
			case "max-inflight":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("tenant %s: bad max-inflight %q", name, val)
				}
				cfg.Limits.MaxInflight = n
			case "rate":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil || r < 0 {
					return fmt.Errorf("tenant %s: bad rate %q", name, val)
				}
				cfg.Limits.RatePerSec = r
			case "burst":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("tenant %s: bad burst %q", name, val)
				}
				cfg.Limits.Burst = n
			default:
				return fmt.Errorf("tenant %s: unknown limit %q (want max-inflight, rate, burst)", name, key)
			}
		}
	}
	tf.configs = append(tf.configs, cfg)
	return nil
}
