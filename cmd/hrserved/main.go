// Command hrserved serves a hierarchical relational database over TCP
// using the HQL wire protocol — framed multiplexed v2 with a line-protocol
// v1 fallback (see docs/HQL.md, "Wire protocol").
//
//	hrserved -data ./mydb                 # durable database in ./mydb
//	hrserved -addr :7583                  # in-memory database
//	hrserved -data ./mydb -workers 4 -queue 32 -max-conns 128
//	hrserved -metrics-addr 127.0.0.1:9090 # HTTP /metrics + /debug/pprof
//	hrserved -slow-query 100ms            # log slow statements to stderr
//
// Multi-tenancy (see README "Multi-tenancy"):
//
//	hrserved -tenant acme -tenant "beta:max-inflight=4,rate=100,burst=200"
//
// Each -tenant declares a named in-memory namespace with its own admission
// quota and rate limit; clients select one at connect time (HELLO on v2,
// USE on v1). Limits on the default namespace: -tenant "default:rate=500".
// -disable-v2 serves only the v1 line protocol (compatibility testing).
//
// Replication (see README "Replication"):
//
//	hrserved -data ./mydb -repl-addr :7584   # primary: serve WAL shipping on :7584
//	hrserved -replica-of host:7584           # read replica following a primary
//
// A primary with -repl-addr serves snapshots (SNAP) and WAL streams (REPL)
// to followers on a dedicated listener, so bulk shipping never competes
// with client admission control. A replica keeps an in-memory copy in sync
// over TCP, answers read-only HQL plus the LAG verb, rejects writes, and
// flips writable when told PROMOTE (manual failover).
//
// The server sheds load beyond its queue with "overloaded" replies,
// enforces per-request deadlines, and on SIGINT/SIGTERM drains in-flight
// statements (bounded by -drain) before closing the store. Process metrics
// are also available over the wire protocol's STATS verb regardless of
// -metrics-addr; see docs/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hrdb"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7583", "listen address")
	dataDir := flag.String("data", "", "durable database directory (empty = in-memory)")
	workers := flag.Int("workers", 0, "statement-executing workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4×workers)")
	maxConns := flag.Int("max-conns", 0, "concurrent connection limit (0 = 256)")
	idle := flag.Duration("idle", 0, "idle connection timeout (0 = 5m, <0 disables)")
	maxDeadline := flag.Duration("max-deadline", 0, "per-request deadline cap (0 = 30s, <0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address serving /metrics (Prometheus) and /debug/pprof (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0, "log statements at least this slow to stderr (0 = disabled)")
	replAddr := flag.String("repl-addr", "", "replication listen address (primary; requires -data)")
	replicaOf := flag.String("replica-of", "", "primary replication address to follow (replica mode; excludes -data)")
	disableV2 := flag.Bool("disable-v2", false, "serve only the v1 line protocol (reject HELLO upgrades)")
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", `named namespace, repeatable: "name[:max-inflight=N,rate=R,burst=B]"`)
	flag.Parse()

	opts := hrdb.ServerOptions{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxConns:    *maxConns,
		IdleTimeout: *idle,
		MaxDeadline: *maxDeadline,
		Tenants:     tenants.configs,
		DisableV2:   *disableV2,
	}
	if *slowQuery > 0 {
		opts.SlowQuery = hrdb.NewSlowQueryLog(os.Stderr, *slowQuery)
	}
	if err := run(*addr, *dataDir, *metricsAddr, *replAddr, *replicaOf, opts, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "hrserved:", err)
		os.Exit(1)
	}
}

func run(addr, dataDir, metricsAddr, replAddr, replicaOf string, opts hrdb.ServerOptions, drain time.Duration) error {
	if replicaOf != "" && dataDir != "" {
		return errors.New("-replica-of keeps an in-memory copy; it cannot be combined with -data")
	}
	if replicaOf != "" && replAddr != "" {
		return errors.New("-repl-addr is a primary flag; a replica cannot also ship its WAL")
	}
	if replAddr != "" && dataDir == "" {
		return errors.New("-repl-addr requires -data: only a durable store has a WAL to ship")
	}

	var target hrdb.Target
	var replSrv *hrdb.Server
	switch {
	case replicaOf != "":
		replica := hrdb.NewReplica(replicaOf, hrdb.ReplicaOptions{})
		defer replica.Close()
		target = hrdb.ReplicaTarget{R: replica}
		opts.LagProbe = func() hrdb.LagInfo {
			staleness, epoch, offset, state := replica.Lag()
			return hrdb.LagInfo{Staleness: staleness, Epoch: epoch, Offset: offset, State: state}
		}
		opts.Promote = func() error {
			err := replica.Promote()
			if err == nil {
				fmt.Fprintln(os.Stderr, "hrserved: promoted — accepting writes (in-memory; state dies with the process)")
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "hrserved: read replica of %s (in-memory copy)\n", replicaOf)
	case dataDir != "":
		store, err := hrdb.OpenStore(dataDir)
		if err != nil {
			return err
		}
		// The server owns the store's lifetime: Shutdown closes it exactly
		// once after the drain, so acknowledged statements are durable.
		opts.CloseTarget = true
		target = store
		fmt.Fprintf(os.Stderr, "hrserved: durable database at %s\n", dataDir)
		if replAddr != "" {
			// Replication rides a dedicated listener sharing the store, so
			// snapshot fetches and WAL streams never occupy the client
			// listener's admission slots.
			primary := hrdb.NewPrimary(store, hrdb.PrimaryOptions{})
			replSrv = hrdb.NewServer(store, hrdb.ServerOptions{Repl: primary})
			if err := replSrv.Start(replAddr); err != nil {
				store.Close()
				return fmt.Errorf("replication listener: %w", err)
			}
			fmt.Fprintf(os.Stderr, "hrserved: serving replication on %s\n", replSrv.Addr())
		}
	default:
		target = hrdb.NewMemTarget(hrdb.NewDatabase())
		fmt.Fprintln(os.Stderr, "hrserved: in-memory database (no -data; state dies with the process)")
	}

	srv := hrdb.NewServer(target, opts)
	if err := srv.Start(addr); err != nil {
		if replSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			replSrv.Shutdown(ctx)
		}
		return err
	}
	fmt.Fprintf(os.Stderr, "hrserved: serving HQL on %s\n", srv.Addr())

	if metricsAddr != "" {
		ms, err := hrdb.ServeMetrics(metricsAddr)
		if err != nil {
			shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			srv.Shutdown(shutdownCtx)
			if replSrv != nil {
				replSrv.Shutdown(shutdownCtx)
			}
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Fprintf(os.Stderr, "hrserved: metrics and pprof on http://%s/\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "hrserved: %v — draining (budget %v)\n", s, drain)

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if replSrv != nil {
		// Stop feeding followers first; the client listener (which owns
		// the store) drains and closes after.
		replSrv.Shutdown(ctx)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	fmt.Fprintln(os.Stderr, "hrserved: clean shutdown")
	return nil
}

// tenantFlags collects repeatable -tenant declarations:
// "name" (unlimited) or "name:max-inflight=N,rate=R,burst=B" (any subset).
type tenantFlags struct {
	configs []hrdb.TenantConfig
}

func (tf *tenantFlags) String() string {
	names := make([]string, len(tf.configs))
	for i, c := range tf.configs {
		names[i] = c.Name
	}
	return strings.Join(names, ",")
}

func (tf *tenantFlags) Set(v string) error {
	name, spec, _ := strings.Cut(v, ":")
	if name == "" {
		return errors.New("tenant name must not be empty")
	}
	cfg := hrdb.TenantConfig{Name: name}
	if spec != "" {
		for _, kv := range strings.Split(spec, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("tenant %s: limit %q is not key=value", name, kv)
			}
			switch key {
			case "max-inflight":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("tenant %s: bad max-inflight %q", name, val)
				}
				cfg.Limits.MaxInflight = n
			case "rate":
				r, err := strconv.ParseFloat(val, 64)
				if err != nil || r < 0 {
					return fmt.Errorf("tenant %s: bad rate %q", name, val)
				}
				cfg.Limits.RatePerSec = r
			case "burst":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return fmt.Errorf("tenant %s: bad burst %q", name, val)
				}
				cfg.Limits.Burst = n
			default:
				return fmt.Errorf("tenant %s: unknown limit %q (want max-inflight, rate, burst)", name, key)
			}
		}
	}
	tf.configs = append(tf.configs, cfg)
	return nil
}
