package hrdb_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hrdb"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndLifecycle drives the whole stack through the public facade:
// durable store → HQL DDL/DML → algebra → consolidate → checkpoint → crash
// recovery → frames → datalog.
func TestEndToEndLifecycle(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: build a durable database through HQL.
	store, err := hrdb.OpenStore(dir)
	must(t, err)
	sess := hrdb.NewStoreSession(store)
	_, err = sess.Exec(`
CREATE HIERARCHY Animal;
CLASS Bird UNDER Animal;
CLASS Canary UNDER Bird;
INSTANCE Tweety UNDER Canary;
CLASS Penguin UNDER Bird;
CLASS AFP UNDER Penguin;
INSTANCE Paul UNDER Penguin;
INSTANCE Pamela UNDER AFP;
CREATE RELATION Flies (Creature: Animal);
ASSERT Flies (Bird);
DENY Flies (Penguin);
ASSERT Flies (AFP);
`)
	must(t, err)

	// Phase 2: queries through the session.
	out, err := sess.Exec("HOLDS Flies (Tweety); HOLDS Flies (Paul); WHY Flies (Pamela);")
	must(t, err)
	if !strings.Contains(out, "true") || !strings.Contains(out, "false") {
		t.Fatalf("out = %q", out)
	}
	if !strings.Contains(out, "+ (AFP)") {
		t.Fatalf("WHY missing binder: %q", out)
	}

	// Phase 3: algebra on a snapshot.
	r, err := store.Database().Snapshot("Flies")
	must(t, err)
	sel, err := hrdb.Select("penguins", r, hrdb.Condition{Attr: "Creature", Class: "Penguin"})
	must(t, err)
	ext, err := sel.Extension()
	must(t, err)
	if len(ext) != 1 || ext[0][0] != "Pamela" {
		t.Fatalf("flying penguins = %v", ext)
	}

	// Phase 4: checkpoint, extra write, crash (close), recover.
	must(t, store.Checkpoint())
	must(t, store.AddInstance("Animal", "Robin", "Bird"))
	must(t, store.Assert("Flies", "Tweety")) // redundant but durable
	must(t, store.Close())

	store2, err := hrdb.OpenStore(dir)
	must(t, err)
	defer store2.Close()
	ok, err := store2.Database().Holds("Flies", "Robin")
	must(t, err)
	if !ok {
		t.Fatal("Robin lost in recovery")
	}

	// Phase 5: consolidate durably; the redundant Tweety tuple goes away.
	must(t, store2.Consolidate("Flies"))
	rel, err := store2.Database().Relation("Flies")
	must(t, err)
	if _, found := rel.Lookup(hrdb.Item{"Tweety"}); found {
		t.Fatal("consolidate did not remove the redundant tuple")
	}

	// Phase 6: a datalog layer over the recovered relation.
	flies, err := store2.Database().Snapshot("Flies")
	must(t, err)
	p := hrdb.NewProgram()
	p.AddEDB("flies", flies)
	h, err := store2.Database().Hierarchy("Animal")
	must(t, err)
	p.AddTaxonomy(h)
	must(t, p.AddRule(hrdb.DatalogRule{
		Head: hrdb.Pred("travelsFar", hrdb.Var("X")),
		Body: []hrdb.RuleAtom{hrdb.Pred("flies", hrdb.Var("X"))},
	}))
	res, err := p.Solve(hrdb.Pred("travelsFar", hrdb.Var("X")))
	must(t, err)
	names := map[string]bool{}
	for _, b := range res {
		names[b["X"]] = true
	}
	for _, want := range []string{"Tweety", "Robin", "Pamela"} {
		if !names[want] {
			t.Fatalf("travelsFar missing %s: %v", want, names)
		}
	}
	if names["Paul"] {
		t.Fatal("Paul must not travel far")
	}
}

// TestFacadeAlgebraSurface smoke-tests each facade function.
func TestFacadeAlgebraSurface(t *testing.T) {
	h := hrdb.NewHierarchy("D")
	must(t, h.AddClass("A"))
	must(t, h.AddInstance("a1", "A"))
	must(t, h.AddInstance("a2", "A"))
	schema, err := hrdb.NewSchema(hrdb.Attribute{Name: "X", Domain: h})
	must(t, err)
	r1 := hrdb.NewRelation("R1", schema)
	must(t, r1.Assert("A"))
	r2 := hrdb.NewRelation("R2", schema)
	must(t, r2.Assert("a1"))

	u, err := hrdb.Union("U", r1, r2)
	must(t, err)
	if n, _ := u.ExtensionSize(); n != 2 {
		t.Fatalf("union size %d", n)
	}
	i, err := hrdb.Intersect("I", r1, r2)
	must(t, err)
	if n, _ := i.ExtensionSize(); n != 1 {
		t.Fatalf("intersect size %d", n)
	}
	d, err := hrdb.Difference("D", r1, r2)
	must(t, err)
	if n, _ := d.ExtensionSize(); n != 1 {
		t.Fatalf("difference size %d", n)
	}
	ren, err := hrdb.Rename("R3", r1, map[string]string{"X": "Y"})
	must(t, err)
	if _, ok := ren.Schema().Index("Y"); !ok {
		t.Fatal("rename failed")
	}
	p, err := hrdb.Project("P", r1, "X")
	must(t, err)
	if p.Len() != r1.Len() {
		t.Fatal("project reorder failed")
	}

	two := hrdb.NewRelation("Two", hrdb.MustSchema(
		hrdb.Attribute{Name: "X", Domain: h},
		hrdb.Attribute{Name: "Y", Domain: h},
	))
	must(t, two.Assert("A", "a1"))
	j, err := hrdb.Join("J", r1, two)
	must(t, err)
	if n, _ := j.ExtensionSize(); n != 2 { // (a1,a1),(a2,a1)
		t.Fatalf("join size %d", n)
	}

	// Three-valued evaluation.
	tv, err := hrdb.EvaluateOpenWorld(r2, hrdb.Item{"a2"})
	must(t, err)
	if tv != hrdb.Unknown {
		t.Fatalf("open world a2 = %v", tv)
	}

	// Mining.
	f := hrdb.NewFlatRelation("F", "X", "Y")
	must(t, f.Insert("p", "1"))
	must(t, f.Insert("q", "1"))
	_, res, err := hrdb.MineBest(f)
	must(t, err)
	if res.CompressionRatio() < 1 {
		t.Fatal("mining ratio < 1")
	}
	mres, err := hrdb.Mine(f, 0)
	must(t, err)
	if mres.FlatRows != 2 {
		t.Fatal("mine rows")
	}
}

// TestFacadeDatabasePolicies drives policy + tx via the facade types.
func TestFacadeDatabasePolicies(t *testing.T) {
	db := hrdb.NewDatabase()
	h, err := db.CreateHierarchy("D")
	must(t, err)
	must(t, h.AddClass("A"))
	must(t, h.AddInstance("x", "A"))
	_, err = db.CreateRelation("R", hrdb.AttrSpec{Name: "X", Domain: "D"})
	must(t, err)
	must(t, db.Assert("R", "A"))

	db.SetPolicy(hrdb.ForbidExceptions)
	if err := db.Deny("R", "x"); err == nil {
		t.Fatal("forbid policy ignored")
	}
	db.SetPolicy(hrdb.WarnExceptions)
	must(t, db.Deny("R", "x"))
	if len(db.Warnings()) == 0 {
		t.Fatal("warn policy silent")
	}
	db.SetPolicy(hrdb.AllowExceptions)

	var ce *hrdb.ConflictError
	_ = ce // type available through the facade
	var ie *hrdb.InconsistencyError
	_, err = db.Retract("R", "A")
	must(t, err)
	must(t, db.Assert("R", "A")) // back to a conflict-free base
	// Conflict through multiple inheritance:
	must(t, h.AddClass("B"))
	must(t, h.AddInstance("y", "A", "B"))
	if err := db.Deny("R", "B"); !errors.As(err, &ie) {
		t.Fatalf("got %v", err)
	}
}

// TestStoreOnDiskLayout sanity-checks the persistent artifacts.
func TestStoreOnDiskLayout(t *testing.T) {
	dir := t.TempDir()
	store, err := hrdb.OpenStore(dir)
	must(t, err)
	must(t, store.CreateHierarchy("D"))
	must(t, store.Checkpoint())
	must(t, store.Close())
	if _, err := os.Stat(filepath.Join(dir, "snapshot.hrdb")); err != nil {
		t.Fatal("snapshot missing")
	}
	// A fresh store logs to wal.log; each checkpoint rotates to an
	// epoch-numbered successor referenced by the snapshot.
	if _, err := os.Stat(filepath.Join(dir, "wal.000001.log")); err != nil {
		t.Fatal("post-checkpoint wal missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.log")); !os.IsNotExist(err) {
		t.Fatal("pre-checkpoint wal not removed")
	}
}

// TestStoreFaultInjectionFacade exercises the durability seam through the
// public API: a store opened over a FaultFS poisons on fsync failure and
// reopening recovers the acknowledged state.
func TestStoreFaultInjectionFacade(t *testing.T) {
	dir := t.TempDir()
	ffs := hrdb.NewFaultFS(nil)
	store, err := hrdb.OpenStoreOptions(dir, hrdb.StoreOptions{FS: ffs})
	must(t, err)
	must(t, store.CreateHierarchy("D"))
	must(t, store.AddClass("D", "C"))

	ffs.FailSyncAfter(0)
	if err := store.AddClass("D", "Lost"); !errors.Is(err, hrdb.ErrStoreFailed) {
		t.Fatalf("got %v, want ErrStoreFailed", err)
	}
	if err := store.CreateHierarchy("E"); !errors.Is(err, hrdb.ErrStoreFailed) {
		t.Fatalf("poisoned store accepted a mutation: %v", err)
	}

	store2, err := hrdb.OpenStore(dir)
	must(t, err)
	defer store2.Close()
	h, err := store2.Database().Hierarchy("D")
	must(t, err)
	if !h.Has("C") {
		t.Fatal("acknowledged class lost after fault")
	}
}
